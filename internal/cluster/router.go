package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uicwelfare/internal/journal"
	"uicwelfare/internal/service"
	"uicwelfare/internal/store"
	"uicwelfare/internal/telemetry"
	"uicwelfare/internal/tracestore"
)

// Options configures a Router.
type Options struct {
	// Backends is the fixed topology (see ParseBackends).
	Backends []Backend
	// ProbeInterval is the health-probe cadence (default 2s).
	ProbeInterval time.Duration
	// ProxyTimeout bounds each proxied or fanned-out backend request
	// (default 30s). SSE streams are exempt — they live as long as the
	// client's connection.
	ProxyTimeout time.Duration
	// AllowPathLoads permits POST /v1/graphs bodies naming router-side
	// files, mirroring the backend flag.
	AllowPathLoads bool
	// SpillDir is where the router spills each cataloged graph's encoded
	// .wmg bytes so it can re-ship a graph whose owner died without
	// holding the whole cluster corpus in router memory. Empty uses a
	// temporary directory removed on Close.
	SpillDir string
	// ClusterToken, when set, is attached (as service.ClusterTokenHeader)
	// to the router's own backend requests — placement imports,
	// rebalancing, sketch ships — so backends started with -cluster-token
	// accept them. Proxied client requests are NOT stamped with it:
	// clients hitting token-gated endpoints through the router must
	// present the token themselves.
	ClusterToken string
	// SweepShardConcurrency bounds how many sweep cells the router keeps
	// in flight per backend at once (default 2): a sweep should load a
	// shard like a couple of eager clients, not like a thundering herd.
	SweepShardConcurrency int
	// JournalRing sizes the router's flight-recorder ring (events
	// retained in memory for GET /v1/events); 0 uses the journal
	// package default. JournalMB caps the on-disk journal spill under
	// SpillDir in MiB; 0 uses the package default.
	JournalRing int
	JournalMB   int
	// TraceRing sizes the router's trace-store ring (completed router
	// trace fragments retained for GET /v1/traces); 0 uses the
	// tracestore default. TraceMB caps its on-disk spill under SpillDir
	// in MiB; TraceSample is the tail-sampling keep probability for fast
	// successful traces (errored ones are always kept). TraceSampleAll
	// forces the sample rate to 1 (tests).
	TraceRing      int
	TraceMB        int
	TraceSample    float64
	TraceSampleAll bool
	// Client is the HTTP client for probes and proxying (default: a
	// plain &http.Client{}; timeouts come from request contexts).
	Client *http.Client
}

// Router fronts N welmaxd backends behind the single-node API: it places
// each graph on one backend by HRW hash of the content-addressed graph
// id, proxies graph-scoped requests to the owner, fans multi-graph
// requests out, follows job ids to the backend that minted them, and
// re-routes graphs (shipping warm sketches along) when membership
// changes.
type Router struct {
	members    *Membership
	client     *http.Client
	interval   time.Duration
	timeout    time.Duration
	allowPaths bool
	token      string
	spillDir   string
	ownSpill   bool // spillDir is router-created and removed on Close
	start      time.Time
	metrics    *telemetry.Metrics
	// flight is the router's control-plane flight recorder: membership
	// transitions, ownership flips, sketch ships, sweep dispatch —
	// queryable through GET /v1/events alongside the shards' journals.
	flight *journal.Recorder
	// traces holds the router's completed trace fragments — the
	// dispatch/proxy spans recorded at the edge for each body-routed
	// request. GET /v1/traces/{id} grafts the owning backend's fragment
	// under these spans into one cross-tier waterfall.
	traces *tracestore.Store

	mu      sync.Mutex
	catalog map[string]*graphRecord
	// tombs remembers client-deleted graph ids so a rebalance or adopt
	// pass racing the DELETE cannot resurrect the graph from a stale
	// snapshot or a backend copy. Re-registering the id clears its
	// tombstone. Bounded crudely: past 4096 entries the set resets,
	// which only re-opens the (tiny) race for long-dead ids.
	tombs map[string]bool

	// syncMu serializes adopt+rebalance passes.
	syncMu     sync.Mutex
	rebalances atomic.Int64 // graphs moved to a new owner
	ships      atomic.Int64 // sketch streams shipped alongside a move

	// Sweep state: the router runs sweeps as jobs in its own JobStore
	// (ids "router-j7", streamed over the same SSE plumbing as backend
	// jobs) and dispatches each cell to the owning shard. Finished
	// results are held like the backend holds its own (bounded map +
	// .wsr artifact under spillDir/sweeps).
	jobs               *service.JobStore
	shardConc          int
	sweepMu            sync.Mutex
	sweepResults       map[string]*sweepRecord
	sweepOrder         []string
	sweepCellsDone     atomic.Int64
	sweepCellsFailed   atomic.Int64
	sweepCellsCanceled atomic.Int64
	// preAdmitRejects counts cells the router refused to dispatch
	// because their predicted sketch cost was obviously over the owning
	// backend's admission budget (satellite: pre-admission at the edge).
	preAdmitRejects atomic.Int64
	// dirty marks an unconverged catalog (a move failed, or a graph's
	// owner is down): the probe loop re-runs syncCatalog every round
	// while set, not only on membership flips, so transient move
	// failures are retried instead of stranding a graph on a dead owner.
	dirty atomic.Bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// graphRecord is the router's view of one registered graph: its name
// label and the backend currently holding it. The encoded .wmg bytes the
// router re-ships when ownership changes live on disk under spillDir
// (see saveWMG) — keeping them in the record would grow router RSS with
// the entire cluster corpus, making the routing tier the memory
// bottleneck sharding exists to remove.
type graphRecord struct {
	id    string
	name  string
	owner string
	// nodes/edges cache the graph's size for sweep pre-admission: the
	// router prices a cell's sketch work with the same core cost
	// estimators the backends use, and those need n and m.
	nodes int
	edges int
}

// New assembles a router over the given topology. Call Start to begin
// probing (until the first probe round every backend counts as down).
func New(opts Options) (*Router, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends")
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	if opts.ProxyTimeout <= 0 {
		opts.ProxyTimeout = 30 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	spillDir, ownSpill := opts.SpillDir, false
	if spillDir == "" {
		d, err := os.MkdirTemp("", "welmaxrouter-catalog-")
		if err != nil {
			return nil, fmt.Errorf("cluster: catalog spill dir: %w", err)
		}
		spillDir, ownSpill = d, true
	} else if err := os.MkdirAll(spillDir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: catalog spill dir: %w", err)
	}
	if opts.SweepShardConcurrency <= 0 {
		opts.SweepShardConcurrency = 2
	}
	probeTimeout := min(opts.ProbeInterval, 2*time.Second)
	jobs := service.NewJobStore(0)
	jobs.SetNodeID("router")
	flight, err := journal.New(journal.Options{
		Node:     "router",
		RingSize: opts.JournalRing,
		Dir:      filepath.Join(spillDir, "journal"),
		MaxBytes: int64(opts.JournalMB) << 20,
	})
	if err != nil {
		if ownSpill {
			os.RemoveAll(spillDir)
		}
		return nil, fmt.Errorf("cluster: journal: %w", err)
	}
	traces, err := tracestore.New(tracestore.Options{
		Node:       "router",
		RingSize:   opts.TraceRing,
		SampleRate: opts.TraceSample,
		SampleAll:  opts.TraceSampleAll,
		Dir:        filepath.Join(spillDir, "traces"),
		MaxBytes:   int64(opts.TraceMB) << 20,
	})
	if err != nil {
		flight.Close()
		if ownSpill {
			os.RemoveAll(spillDir)
		}
		return nil, fmt.Errorf("cluster: trace store: %w", err)
	}
	r := &Router{
		members:      NewMembership(opts.Backends, client, probeTimeout),
		client:       client,
		interval:     opts.ProbeInterval,
		timeout:      opts.ProxyTimeout,
		allowPaths:   opts.AllowPathLoads,
		token:        opts.ClusterToken,
		spillDir:     spillDir,
		ownSpill:     ownSpill,
		start:        time.Now(),
		metrics:      telemetry.NewMetrics(),
		flight:       flight,
		traces:       traces,
		catalog:      map[string]*graphRecord{},
		tombs:        map[string]bool{},
		jobs:         jobs,
		shardConc:    opts.SweepShardConcurrency,
		sweepResults: map[string]*sweepRecord{},
		stop:         make(chan struct{}),
	}
	// Every probe-round health transition becomes a member_up/member_down
	// event, stamped with the member's own node name so ?node= finds it.
	r.members.SetTransitionHook(func(name string, healthy bool, errMsg string) {
		typ := journal.MemberUp
		if !healthy {
			typ = journal.MemberDown
		}
		r.flight.Record(journal.Event{Type: typ, Node: name, Error: errMsg})
	})
	return r, nil
}

// Journal exposes the router's flight recorder (welmaxd wiring and
// tests).
func (r *Router) Journal() *journal.Recorder { return r.flight }

// Traces exposes the router's trace-fragment store (tests).
func (r *Router) Traces() *tracestore.Store { return r.traces }

// Start runs the probe/rebalance loop: an immediate first sync, then one
// probe round per interval, rebalancing whenever membership changed.
func (r *Router) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.Sync(context.Background())
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				if r.members.ProbeAll(context.Background()) || r.dirty.Load() {
					r.syncCatalog(context.Background())
				}
			}
		}
	}()
}

// Close stops the probe loop and, when the catalog spill directory was
// router-created, removes it.
func (r *Router) Close() {
	close(r.stop)
	r.wg.Wait()
	r.flight.Close()
	r.traces.Close()
	if r.ownSpill {
		os.RemoveAll(r.spillDir)
	}
}

// --- catalog spill ------------------------------------------------------

func (r *Router) spillPath(id string) string {
	return filepath.Join(r.spillDir, id+store.GraphExt)
}

// saveWMG spills a graph's encoded bytes under the catalog directory,
// reporting success. On failure the move path falls back to re-fetching
// the export from a live holder (fetchWMG), and adopt re-tries the spill
// while one still exports the graph.
func (r *Router) saveWMG(id string, wmg []byte) bool {
	tmp, err := os.CreateTemp(r.spillDir, id+".*.tmp")
	if err != nil {
		log.Printf("cluster: spill %s: %v", id, err)
		return false
	}
	if _, err := tmp.Write(wmg); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		log.Printf("cluster: spill %s: %v", id, err)
		return false
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		log.Printf("cluster: spill %s: %v", id, err)
		return false
	}
	if err := os.Rename(tmp.Name(), r.spillPath(id)); err != nil {
		os.Remove(tmp.Name())
		log.Printf("cluster: spill %s: %v", id, err)
		return false
	}
	return true
}

func (r *Router) loadWMG(id string) ([]byte, error) {
	return os.ReadFile(r.spillPath(id))
}

func (r *Router) removeWMG(id string) {
	os.Remove(r.spillPath(id))
}

// Sync runs one full round synchronously — probe every backend, adopt
// unknown graphs, rebalance ownership. The loop uses it for its first
// round; tests use it for determinism.
func (r *Router) Sync(ctx context.Context) {
	r.members.ProbeAll(ctx)
	r.syncCatalog(ctx)
}

// --- HTTP surface -------------------------------------------------------

// Handler returns the router's client-facing API — the same routes a
// single-node welmaxd serves.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", r.timed("POST /v1/graphs", r.handleCreateGraph))
	mux.HandleFunc("GET /v1/graphs", r.timed("GET /v1/graphs", r.handleListGraphs))
	mux.HandleFunc("GET /v1/graphs/{id}", r.timed("GET /v1/graphs/{id}", r.proxyGraphScoped))
	mux.HandleFunc("DELETE /v1/graphs/{id}", r.timed("DELETE /v1/graphs/{id}", r.handleDeleteGraph))
	mux.HandleFunc("POST /v1/graphs/{id}/warm", r.timed("POST /v1/graphs/{id}/warm", r.proxyGraphScoped))
	mux.HandleFunc("GET /v1/graphs/{id}/export", r.timed("GET /v1/graphs/{id}/export", r.proxyGraphScoped))
	mux.HandleFunc("GET /v1/graphs/{id}/sketches", r.timed("GET /v1/graphs/{id}/sketches", r.proxyGraphScoped))
	mux.HandleFunc("POST /v1/graphs/{id}/sketches", r.timed("POST /v1/graphs/{id}/sketches", r.proxyGraphScoped))
	mux.HandleFunc("GET /v1/algorithms", r.timed("GET /v1/algorithms", r.handleAlgorithms))
	mux.HandleFunc("POST /v1/allocate", r.timed("POST /v1/allocate", r.handleBodyRouted))
	mux.HandleFunc("POST /v1/estimate", r.timed("POST /v1/estimate", r.handleBodyRouted))
	mux.HandleFunc("GET /v1/jobs", r.timed("GET /v1/jobs", r.handleListJobs))
	mux.HandleFunc("GET /v1/jobs/{id}", r.timed("GET /v1/jobs/{id}", r.proxyJobScoped))
	mux.HandleFunc("GET /v1/jobs/{id}/events", r.timed("GET /v1/jobs/{id}/events", r.proxyJobScoped))
	mux.HandleFunc("DELETE /v1/jobs/{id}", r.timed("DELETE /v1/jobs/{id}", r.proxyJobScoped))
	mux.HandleFunc("POST /v1/sweeps", r.timed("POST /v1/sweeps", r.handleCreateSweep))
	mux.HandleFunc("GET /v1/sweeps", r.timed("GET /v1/sweeps", r.handleListSweeps))
	mux.HandleFunc("GET /v1/sweeps/{id}", r.timed("GET /v1/sweeps/{id}", r.handleGetSweep))
	mux.HandleFunc("GET /v1/sweeps/{id}/events", r.timed("GET /v1/sweeps/{id}/events", r.handleSweepEvents))
	mux.HandleFunc("GET /v1/sweeps/{id}/results", r.timed("GET /v1/sweeps/{id}/results", r.handleSweepResults))
	mux.HandleFunc("DELETE /v1/sweeps/{id}", r.timed("DELETE /v1/sweeps/{id}", r.handleCancelSweep))
	mux.HandleFunc("GET /v1/events", r.timed("GET /v1/events", r.handleEvents))
	mux.HandleFunc("GET /v1/traces", r.timed("GET /v1/traces", r.handleTraces))
	mux.HandleFunc("GET /v1/traces/{id}", r.timed("GET /v1/traces/{id}", r.handleTraceGet))
	mux.HandleFunc("GET /v1/cluster/placement/{graph_id}", r.timed("GET /v1/cluster/placement/{graph_id}", r.handlePlacement))
	mux.HandleFunc("GET /v1/stats", r.timed("GET /v1/stats", r.handleStats))
	mux.HandleFunc("GET /v1/metrics", r.timed("GET /v1/metrics", r.handleMetrics))
	mux.HandleFunc("GET /healthz", r.timed("GET /healthz", r.handleHealthz))
	mux.HandleFunc("GET /v1/healthz", r.timed("GET /v1/healthz", r.handleHealthz))
	return mux
}

// timed wraps a route handler with the router's own request-latency
// histogram. The route label is the literal mux pattern (Go 1.22's
// ServeMux has no Pattern field on the request, so the registration
// closes over it). The trace id the handler echoed on the response (if
// any) becomes the bucket's exemplar.
func (r *Router) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		h(w, req)
		r.metrics.ObserveEx("welmax_http_request_duration_seconds",
			[]telemetry.Label{{Name: "route", Value: route}}, time.Since(start),
			w.Header().Get(telemetry.TraceHeader))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeRetryable reports a transient routing failure (owner down,
// backend unreachable): the body carries "retryable": true so clients
// know the same request may succeed after the next rebalance, plus the
// request's trace id (adopted from the client's header or minted here,
// and echoed on the response) so the failure can be correlated with the
// flight recorder's events for the same window.
func writeRetryable(w http.ResponseWriter, req *http.Request, status int, err error) {
	traceID := telemetry.SanitizeID(req.Header.Get(telemetry.TraceHeader))
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	w.Header().Set(telemetry.TraceHeader, traceID)
	writeJSON(w, status, map[string]any{"error": err.Error(), "retryable": true, "trace_id": traceID})
}

// maxBodyBytes mirrors the backend's request-body bound.
const maxBodyBytes = 64 << 20

// maxShipBytes bounds router-internal transfers (sketch-stream exports
// read back during a move). Warm sets are bounded by the backends'
// cache budgets, but they can legitimately exceed the public 64MB
// request cap, and silently truncating one would discard sketch work.
const maxShipBytes = 1 << 30

// ownerOf resolves the backend that should serve a graph-scoped request:
// the cataloged owner when the router registered (or adopted) the graph,
// otherwise the HRW owner among live backends — covering graphs that
// exist only on a backend's boot re-index until adoption picks them up.
func (r *Router) ownerOf(graphID string) (string, error) {
	// rec.owner is copied while r.mu is held: rebalance() rewrites the
	// field under the same lock, and an unlocked read here would race it.
	r.mu.Lock()
	rec := r.catalog[graphID]
	dead := r.tombs[graphID]
	var owner string
	if rec != nil {
		owner = rec.owner
	}
	r.mu.Unlock()
	if rec != nil {
		if !r.members.IsAlive(owner) {
			return "", fmt.Errorf("backend %q owning graph %s is down; rebalance pending, retry shortly", owner, graphID)
		}
		return owner, nil
	}
	// Not cataloged: either unknown everywhere (the HRW owner will 404,
	// which is the right answer) or registered directly on some backend
	// behind the router's back — flag the drift so the next probe round
	// adopts it instead of waiting for a membership flip.
	if !dead {
		r.dirty.Store(true)
	}
	alive := r.members.Alive()
	owner, ok := Owner(alive, graphID)
	if !ok {
		return "", fmt.Errorf("no live backends")
	}
	return owner, nil
}

// proxyGraphScoped forwards /v1/graphs/{id}... to the graph's owner.
func (r *Router) proxyGraphScoped(w http.ResponseWriter, req *http.Request) {
	owner, err := r.ownerOf(req.PathValue("id"))
	if err != nil {
		writeRetryable(w, req, http.StatusBadGateway, err)
		return
	}
	r.proxy(w, req, owner, nil)
}

// handleDeleteGraph forwards the delete to the owner and, on success,
// forgets the graph so the rebalancer stops re-shipping it.
func (r *Router) handleDeleteGraph(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	owner, err := r.ownerOf(id)
	if err != nil {
		writeRetryable(w, req, http.StatusBadGateway, err)
		return
	}
	status := r.proxy(w, req, owner, nil)
	if status >= 200 && status < 300 {
		r.mu.Lock()
		delete(r.catalog, id)
		if len(r.tombs) > 4096 {
			r.tombs = map[string]bool{}
		}
		r.tombs[id] = true
		r.mu.Unlock()
		r.removeWMG(id)
	}
}

// proxyJobScoped forwards /v1/jobs/{id}... to the backend encoded in the
// job id's node prefix.
func (r *Router) proxyJobScoped(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	node, ok := JobNode(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q (cluster job ids carry a node prefix, e.g. b0-j7)", id))
		return
	}
	if _, ok := r.members.URLOf(node); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q: no backend %q in the topology", id, node))
		return
	}
	if !r.members.IsAlive(node) {
		writeRetryable(w, req, http.StatusBadGateway, fmt.Errorf("backend %q holding job %s is down", node, id))
		return
	}
	r.proxy(w, req, node, nil)
}

// handleBodyRouted forwards POST /v1/allocate and /v1/estimate: the
// routing key (graph_id) lives in the JSON body, so it is buffered,
// peeked, and replayed to the owner. The hop is traced: a dispatch span
// covers the routing decision, a proxy child span covers the backend
// round trip, and the proxy span's id travels in X-Welmax-Span-Id so
// the backend parents its own spans under it — the two fragments of
// the trace reassemble into one tree on GET /v1/traces/{id}.
func (r *Router) handleBodyRouted(w http.ResponseWriter, req *http.Request) {
	tr := telemetry.NewTrace(telemetry.SanitizeID(req.Header.Get(telemetry.TraceHeader)), true)
	w.Header().Set(telemetry.TraceHeader, tr.ID())
	ctx := telemetry.NewContext(req.Context(), tr)
	route := strings.TrimPrefix(req.URL.Path, "/v1/")
	dctx, endDispatch := telemetry.WithSpan(ctx, "dispatch")
	fail := func(status int, err error) {
		endDispatch()
		r.recordTrace(tr, route, "", err)
		writeError(w, status, err)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err != nil {
		fail(http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var peek struct {
		GraphID string `json:"graph_id"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		fail(http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if peek.GraphID == "" {
		fail(http.StatusBadRequest, fmt.Errorf("graph_id required"))
		return
	}
	owner, err := r.ownerOf(peek.GraphID)
	if err != nil {
		endDispatch()
		r.recordTrace(tr, route, peek.GraphID, err)
		writeRetryable(w, req, http.StatusBadGateway, err)
		return
	}
	pctx, endProxy := telemetry.WithSpan(dctx, "proxy")
	req.Header.Set(telemetry.TraceHeader, tr.ID())
	req.Header.Set(telemetry.SpanHeader, telemetry.SpanIDFromContext(pctx))
	status := r.proxy(w, req.WithContext(pctx), owner, body)
	endProxy()
	endDispatch()
	var perr error
	if status == 0 {
		perr = fmt.Errorf("backend %q unreachable", owner)
	}
	r.recordTrace(tr, route, peek.GraphID, perr)
}

// recordTrace offers the router's fragment of one body-routed request
// to the trace store. The edge fragment covers the 202 exchange, not
// the backend job that follows it — GET /v1/traces/{id} fetches the
// backend's own fragment and grafts the two together.
func (r *Router) recordTrace(tr *telemetry.Trace, route, graphID string, err error) {
	rec := tracestore.Record{
		TraceID:      tr.ID(),
		Route:        route,
		Graph:        graphID,
		Start:        tr.Start(),
		DurationMS:   float64(time.Since(tr.Start())) / float64(time.Millisecond),
		Spans:        tr.Spans(),
		SpansDropped: tr.DroppedSpans(),
		Resources:    tr.Resources(),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	r.traces.Add(rec)
}

// handleCreateGraph implements POST /v1/graphs: materialize the graph on
// the router (the only way to learn its content id before placing it),
// pick the HRW owner, and re-register it there as inline .wmg bytes. The
// bytes are spilled to the catalog directory so the router can re-ship
// the graph if the owner later leaves.
func (r *Router) handleCreateGraph(w http.ResponseWriter, req *http.Request) {
	var greq service.GraphRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&greq); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if greq.Path != "" && !r.allowPaths {
		writeError(w, http.StatusForbidden,
			fmt.Errorf("router-side path loading is disabled (start the router with -allow-paths)"))
		return
	}
	name, g, err := service.LoadGraph(&greq)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := store.GraphID(g)
	var wmg bytes.Buffer
	if err := store.EncodeGraph(&wmg, name, g); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	// A graph already routed keeps its owner (content addressing makes
	// this a dedupe); a new one goes to its HRW owner. The owner field is
	// copied under r.mu — rebalance() rewrites it under the same lock.
	r.mu.Lock()
	rec := r.catalog[id]
	var curOwner string
	if rec != nil {
		curOwner = rec.owner
	}
	r.mu.Unlock()
	owner := ""
	if rec != nil && r.members.IsAlive(curOwner) {
		owner = curOwner
	} else if o, ok := Owner(r.members.Alive(), id); ok {
		owner = o
	} else {
		writeRetryable(w, req, http.StatusServiceUnavailable, fmt.Errorf("no live backends"))
		return
	}

	// Raw .wmg import, not a JSON-embedded graph: base64 inside a
	// GraphRequest would hit the backend's request-body cap long before
	// the graphs the backends themselves can hold. The placement runs
	// under the request's trace (adopted or minted here at the edge) and
	// is timed as a cluster op.
	tr := telemetry.NewTrace(telemetry.SanitizeID(req.Header.Get(telemetry.TraceHeader)), true)
	w.Header().Set(telemetry.TraceHeader, tr.ID())
	ctx := telemetry.NewContext(req.Context(), tr)
	placeStart := time.Now()
	status, raw, err := r.call(ctx, http.MethodPost, owner, "/v1/graphs/import", bytes.NewReader(wmg.Bytes()))
	r.observeOp("placement", placeStart)
	if err != nil {
		writeRetryable(w, req, http.StatusBadGateway, fmt.Errorf("backend %q: %w", owner, err))
		return
	}
	if status == http.StatusCreated || status == http.StatusOK {
		if !r.saveWMG(id, wmg.Bytes()) {
			// The graph is registered but not re-shippable from the router
			// alone; flag the catalog so the next probe round re-tries the
			// spill (adopt) while the owner still exports it.
			r.dirty.Store(true)
		}
		r.mu.Lock()
		delete(r.tombs, id) // a re-registration revives a deleted id
		if rec = r.catalog[id]; rec == nil {
			r.catalog[id] = &graphRecord{id: id, name: name, owner: owner, nodes: g.N(), edges: g.M()}
		} else {
			rec.owner = owner
			rec.nodes, rec.edges = g.N(), g.M()
		}
		r.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(raw)
}

// handleAlgorithms proxies to the first live backend — every backend
// runs the same registry, so any answer is the cluster's answer.
func (r *Router) handleAlgorithms(w http.ResponseWriter, req *http.Request) {
	alive := r.members.Alive()
	if len(alive) == 0 {
		writeRetryable(w, req, http.StatusServiceUnavailable, fmt.Errorf("no live backends"))
		return
	}
	r.proxy(w, req, alive[0], nil)
}

// handleListGraphs fans GET /v1/graphs out to every live backend and
// merges the lists (deduped by id — during a rebalance a graph can be
// momentarily resident on two backends). Backends that fail within the
// proxy deadline are reported in "errors" with "partial": true rather
// than failing the whole listing.
func (r *Router) handleListGraphs(w http.ResponseWriter, req *http.Request) {
	results := r.fanout(req.Context(), http.MethodGet, "/v1/graphs")
	seen := map[string]service.GraphInfo{}
	errs := map[string]string{}
	for _, res := range results {
		if res.err != nil {
			errs[res.backend] = res.err.Error()
			continue
		}
		var body struct {
			Graphs []service.GraphInfo `json:"graphs"`
		}
		if err := json.Unmarshal(res.body, &body); err != nil {
			errs[res.backend] = err.Error()
			continue
		}
		for _, gi := range body.Graphs {
			seen[gi.ID] = gi
		}
	}
	graphs := make([]service.GraphInfo, 0, len(seen))
	r.mu.Lock()
	for id, gi := range seen {
		graphs = append(graphs, gi)
		// A listed graph the catalog does not know about was registered
		// directly on a backend: flag it for adoption on the next round.
		if r.catalog[id] == nil && !r.tombs[id] {
			r.dirty.Store(true)
		}
	}
	r.mu.Unlock()
	sort.Slice(graphs, func(i, j int) bool { return graphs[i].ID < graphs[j].ID })
	out := map[string]any{"graphs": graphs}
	if len(errs) > 0 {
		out["partial"] = true
		out["errors"] = errs
	}
	writeJSON(w, http.StatusOK, out)
}

// RouterStats is the router's GET /v1/stats body: the cluster summary
// plus each live backend's own stats.
type RouterStats struct {
	Cluster struct {
		Backends []BackendStatus `json:"backends"`
		// Graphs counts graphs the router has routed or adopted.
		Graphs int `json:"graphs"`
		// Rebalances counts graphs moved to a new owner; SketchShips
		// counts the warm-sketch streams shipped along with them.
		Rebalances  int64 `json:"rebalances"`
		SketchShips int64 `json:"sketch_ships"`
		// Batched, CoalescedRequests, and AdmissionRejects aggregate the
		// per-shard batch-scheduler and admission-control counters across
		// the live backends (each backend's own numbers are under
		// Backends[name].batch) — batching and admission run per shard,
		// so the cluster-level picture is their sum.
		Batched           int64 `json:"batched"`
		CoalescedRequests int64 `json:"coalesced_requests"`
		AdmissionRejects  int64 `json:"admission_rejects"`
		// SweepCells* count the router's sweep-dispatched cells by
		// terminal state; PreAdmissionRejects counts cells refused at the
		// router because their predicted cost was obviously over the
		// owner's admission budget.
		SweepCellsDone      int64 `json:"sweep_cells_done"`
		SweepCellsFailed    int64 `json:"sweep_cells_failed"`
		SweepCellsCanceled  int64 `json:"sweep_cells_canceled"`
		PreAdmissionRejects int64 `json:"pre_admission_rejects"`
		UptimeMS            int64 `json:"uptime_ms"`
	} `json:"cluster"`
	// Backends maps node name to that backend's full StatsResponse;
	// unreachable backends appear in Errors instead.
	Backends map[string]service.StatsResponse `json:"backends"`
	Errors   map[string]string                `json:"errors,omitempty"`
}

// Stats assembles the cluster stats view (also used by tests directly).
func (r *Router) Stats(ctx context.Context) RouterStats {
	var out RouterStats
	out.Cluster.Backends = r.members.Snapshot()
	r.mu.Lock()
	out.Cluster.Graphs = len(r.catalog)
	r.mu.Unlock()
	out.Cluster.Rebalances = r.rebalances.Load()
	out.Cluster.SketchShips = r.ships.Load()
	out.Cluster.SweepCellsDone = r.sweepCellsDone.Load()
	out.Cluster.SweepCellsFailed = r.sweepCellsFailed.Load()
	out.Cluster.SweepCellsCanceled = r.sweepCellsCanceled.Load()
	out.Cluster.PreAdmissionRejects = r.preAdmitRejects.Load()
	out.Cluster.UptimeMS = time.Since(r.start).Milliseconds()
	out.Backends = map[string]service.StatsResponse{}
	for _, res := range r.fanout(ctx, http.MethodGet, "/v1/stats") {
		if res.err != nil {
			if out.Errors == nil {
				out.Errors = map[string]string{}
			}
			out.Errors[res.backend] = res.err.Error()
			continue
		}
		var st service.StatsResponse
		if err := json.Unmarshal(res.body, &st); err == nil {
			out.Backends[res.backend] = st
			out.Cluster.Batched += st.Batch.Batched
			out.Cluster.CoalescedRequests += st.Batch.CoalescedRequests
			out.Cluster.AdmissionRejects += st.Batch.AdmissionRejects
		}
	}
	return out
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Stats(req.Context()))
}

// handleListJobs fans GET /v1/jobs out and concatenates: job ids are
// globally unique (node-prefixed), so no rewriting or deduping is
// needed. The ?state= filter is forwarded verbatim.
func (r *Router) handleListJobs(w http.ResponseWriter, req *http.Request) {
	path := "/v1/jobs"
	if q := req.URL.RawQuery; q != "" {
		path += "?" + q
	}
	var jobs []json.RawMessage
	errs := map[string]string{}
	for _, res := range r.fanout(req.Context(), http.MethodGet, path) {
		if res.err != nil {
			errs[res.backend] = res.err.Error()
			continue
		}
		if res.status == http.StatusBadRequest {
			// A 400 (bad ?state=) is the client's error; relay it.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(res.status)
			_, _ = w.Write(res.body)
			return
		}
		if res.status != http.StatusOK {
			// Any other failure is that backend's problem, not the
			// listing's: report it partial like an unreachable backend.
			errs[res.backend] = fmt.Sprintf("status %d", res.status)
			continue
		}
		var body struct {
			Jobs []json.RawMessage `json:"jobs"`
		}
		if err := json.Unmarshal(res.body, &body); err != nil {
			errs[res.backend] = err.Error()
			continue
		}
		jobs = append(jobs, body.Jobs...)
	}
	out := map[string]any{"jobs": jobs}
	if len(jobs) == 0 {
		out["jobs"] = []json.RawMessage{}
	}
	if len(errs) > 0 {
		out["partial"] = true
		out["errors"] = errs
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	alive := r.members.Alive()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"role":     "router",
		"backends": len(r.members.Snapshot()),
		"alive":    len(alive),
	})
}

// --- proxy plumbing -----------------------------------------------------

// proxy forwards req to the named backend, streaming the response back
// (flushing per chunk, which is what lets SSE event streams pass
// through). body, when non-nil, replaces the (already consumed) request
// body. Returns the relayed status, or 0 when the backend was
// unreachable (a 502 with a retryable body was written instead).
func (r *Router) proxy(w http.ResponseWriter, req *http.Request, backend string, body []byte) int {
	base, ok := r.members.URLOf(backend)
	if !ok {
		writeError(w, http.StatusBadGateway, fmt.Errorf("unknown backend %q", backend))
		return 0
	}
	url := base + req.URL.Path
	if q := req.URL.RawQuery; q != "" {
		url += "?" + q
	}

	ctx := req.Context()
	// Event streams run until the client hangs up; everything else gets
	// the proxy deadline.
	streaming := req.Method == http.MethodGet && len(req.URL.Path) > 7 && req.URL.Path[len(req.URL.Path)-7:] == "/events"
	if !streaming {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}

	var rd io.Reader = req.Body
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(ctx, req.Method, url, rd)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return 0
	}
	// The client's own cluster-token header (if any) passes through with
	// the rest; the router's credential is deliberately NOT attached here.
	// Stamping it onto client-originated requests would let any caller who
	// can reach the router import sketches into a token-gated backend — a
	// confused deputy. The router authenticates only its own traffic
	// (call, streamSketches); clients hitting gated endpoints through the
	// proxy must present the token themselves.
	copyEndToEndHeaders(out.Header, req.Header)
	// The trace id is minted here, at the cluster edge, when the client
	// did not send one: the backend keeps a router-minted (or
	// client-sent) id, so the same id names the request in the router's
	// logs, the backend's job record, and the SSE stream.
	if out.Header.Get(telemetry.TraceHeader) == "" {
		out.Header.Set(telemetry.TraceHeader, telemetry.NewTraceID())
	}
	resp, err := r.client.Do(out)
	if err != nil {
		writeRetryable(w, req, http.StatusBadGateway, fmt.Errorf("backend %q: %w", backend, err))
		return 0
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Cache-Control", "Content-Disposition", telemetry.TraceHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	copyFlush(w, resp.Body)
	return resp.StatusCode
}

// hopHeaders are the hop-by-hop (or transport-owned) request headers a
// proxy must not forward verbatim; everything else — Accept,
// Last-Event-ID (an SSE client resuming through the router), conditional
// headers — passes through end to end.
var hopHeaders = map[string]bool{
	"Connection":          true,
	"Content-Length":      true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Proxy-Connection":    true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

// copyEndToEndHeaders copies the end-to-end request headers from src
// onto an outbound backend request.
func copyEndToEndHeaders(dst, src http.Header) {
	for k, vv := range src {
		if hopHeaders[k] {
			continue
		}
		dst[k] = append([]string(nil), vv...)
	}
}

// copyFlush copies src to dst, flushing after every read so proxied SSE
// frames reach the client as the backend emits them.
func copyFlush(dst http.ResponseWriter, src io.Reader) {
	fl, _ := dst.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// call performs one router-initiated backend request (registration,
// shipping, sweep dispatch) under the proxy deadline, returning the
// status and body. When the context carries a trace (placement, a
// catalog sync pass, a sweep), its id is stamped onto the request, so
// the backend's job records and logs correlate with the router-side
// operation that caused them.
func (r *Router) call(ctx context.Context, method, backend, path string, body io.Reader) (int, []byte, error) {
	base, ok := r.members.URLOf(backend)
	if !ok {
		return 0, nil, fmt.Errorf("unknown backend %q", backend)
	}
	ctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, base+path, body)
	if err != nil {
		return 0, nil, err
	}
	if r.token != "" {
		req.Header.Set(service.ClusterTokenHeader, r.token)
	}
	if tr := telemetry.FromContext(ctx); tr != nil && tr.ID() != "" {
		req.Header.Set(telemetry.TraceHeader, tr.ID())
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxShipBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

func jsonBody(v any) io.Reader {
	raw, _ := json.Marshal(v)
	return bytes.NewReader(raw)
}

// fanoutResult is one backend's answer to a fanned-out request.
type fanoutResult struct {
	backend string
	status  int
	body    []byte
	err     error
}

// fanout issues the request to every live backend concurrently, each
// under the proxy deadline — one slow backend delays the merge at most
// by the deadline, never forever. When ctx carries a trace, the whole
// fan-in is one fan_out span on it.
func (r *Router) fanout(ctx context.Context, method, path string) []fanoutResult {
	endFan := telemetry.StartSpan(ctx, "fan_out")
	defer endFan()
	alive := r.members.Alive()
	out := make([]fanoutResult, len(alive))
	var wg sync.WaitGroup
	for i, name := range alive {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body, err := r.call(ctx, method, name, path, nil)
			out[i] = fanoutResult{backend: name, status: status, body: body, err: err}
		}()
	}
	wg.Wait()
	return out
}
