// Package stats provides the random-number and probability substrate used
// throughout the library: a fast deterministic PRNG, the noise
// distributions of the UIC model, and simple summary statistics for
// Monte-Carlo estimators.
package stats

import "math"

// RNG is a seedable xoshiro256++ pseudo-random generator. It is not safe
// for concurrent use; estimators that shard work across goroutines derive
// one RNG per shard with Split.
type RNG struct {
	s [4]uint64
	// cached second output of the polar Gaussian method
	gauss    float64
	hasGauss bool
}

// splitmix64 advances the seed-expansion state and returns the next value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given value. Distinct seeds
// give independent-looking streams; the same seed always yields the same
// stream.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split returns a new RNG seeded from the current stream, suitable for
// handing to another goroutine.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	v := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, v)
	if lo < v {
		thresh := -v % v
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, v)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo = a * b
	hi = a1*b1 + t>>32 + (t&mask32+a0*b1)>>32
	return
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method with one cached spare value.
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the given swap
// function, matching the contract of rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
