// Command experiments regenerates the paper's tables and figures on the
// synthetic stand-in networks. Each -run target prints the rows of one
// table or figure; "all" runs everything (EXPERIMENTS.md records a full
// run).
//
// Examples:
//
//	experiments -run table2
//	experiments -run fig4 -scale 0.2 -runs 2000
//	experiments -run all -scale 0.1
//
// With -remote the mini grid runs against a live welmaxd or cluster
// router via POST /v1/sweeps instead of in-process:
//
//	experiments -remote http://127.0.0.1:8080 -scale 0.05 -runs 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"uicwelfare/internal/expr"
)

func main() {
	var (
		run    = flag.String("run", "all", "target: table2|fig4|fig5|fig6|fig7|fig8a|fig8bc|fig8d|fig9|fig9d|table5|table6|all")
		scale  = flag.Float64("scale", 0.25, "network scale factor")
		seed   = flag.Uint64("seed", 1, "random seed")
		runs   = flag.Int("runs", 2000, "Monte-Carlo runs per welfare estimate")
		items  = flag.Int("items", 5, "item count for multi-item experiments")
		remote = flag.String("remote", "", "base URL of a welmaxd or router; runs the mini grid via POST /v1/sweeps")
	)
	flag.Parse()

	p := expr.Params{Scale: *scale, Seed: *seed, Runs: *runs}
	if *remote != "" {
		if err := runRemote(*remote, p, *items); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	targets := strings.Split(*run, ",")
	if *run == "all" {
		targets = []string{"table2", "fig4", "fig5", "fig6", "fig7", "fig8a", "fig8bc", "fig8d", "fig9", "fig9d", "table5", "table6"}
	}
	for _, target := range targets {
		if err := dispatch(strings.TrimSpace(target), p, *items); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

func dispatch(target string, p expr.Params, items int) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()
	switch target {
	case "table2":
		fmt.Println("== Table 2: network statistics (stand-ins vs paper) ==")
		fmt.Fprintln(w, "network\tpaper n\tpaper m\tgen n\tgen m\tavg deg\ttype")
		for _, r := range expr.Table2(p.Scale, p.Seed) {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\t%s\n",
				r.Name, r.PaperNodes, r.PaperEdges, r.Nodes, r.Edges, r.AvgDegree, r.Type)
		}
	case "fig4":
		for cfg := 1; cfg <= 4; cfg++ {
			rows, err := expr.Fig4(cfg, p)
			if err != nil {
				return err
			}
			fmt.Printf("== Fig 4(%c): expected social welfare, configuration %d (douban-movie) ==\n", 'a'+cfg-1, cfg)
			fmt.Fprintln(w, "budget\talgorithm\twelfare\t±95%")
			for _, r := range rows {
				fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\n", r.Budget, r.Algorithm, r.Welfare, 1.96*r.WelfareSE)
			}
			w.Flush()
		}
	case "fig5", "fig6":
		names := []string{"flixster", "douban-book", "douban-movie", "twitter"}
		for i, net := range names {
			rows, err := expr.Fig5And6(net, p)
			if err != nil {
				return err
			}
			if target == "fig5" {
				fmt.Printf("== Fig 5(%c): running time (ms), configuration 1, %s ==\n", 'a'+i, net)
				fmt.Fprintln(w, "budget\talgorithm\tmillis")
				for _, r := range rows {
					fmt.Fprintf(w, "%s\t%s\t%.1f\n", r.Budget, r.Algorithm, r.Millis)
				}
			} else {
				fmt.Printf("== Fig 6(%c): #RR sets, configuration 1, %s ==\n", 'a'+i, net)
				fmt.Fprintln(w, "budget\talgorithm\tRR sets")
				for _, r := range rows {
					fmt.Fprintf(w, "%s\t%s\t%d\n", r.Budget, r.Algorithm, r.RRSets)
				}
			}
			w.Flush()
		}
	case "fig7":
		for cfg := 5; cfg <= 8; cfg++ {
			rows, err := expr.Fig7(cfg, items, p)
			if err != nil {
				return err
			}
			fmt.Printf("== Fig 7(%c): multi-item welfare, configuration %d (twitter) ==\n", 'a'+cfg-5, cfg)
			fmt.Fprintln(w, "total budget\talgorithm\twelfare\t±95%")
			for _, r := range rows {
				fmt.Fprintf(w, "%d\t%s\t%.1f\t%.1f\n", r.TotalBudget, r.Algorithm, r.Welfare, 1.96*r.WelfareSE)
			}
			w.Flush()
		}
	case "fig8a":
		rows, err := expr.Fig8a(10, p)
		if err != nil {
			return err
		}
		fmt.Println("== Fig 8(a): running time vs number of items (configuration 5, twitter) ==")
		fmt.Fprintln(w, "items\talgorithm\tmillis")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%s\t%.1f\n", r.Items, r.Algorithm, r.Millis)
		}
	case "fig8bc":
		rows, err := expr.Fig8bc(p)
		if err != nil {
			return err
		}
		fmt.Println("== Fig 8(b,c): real Param welfare and running time (twitter) ==")
		fmt.Fprintln(w, "total budget\talgorithm\twelfare\t±95%\tmillis")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%s\t%.1f\t%.1f\t%.1f\n", r.Total, r.Algorithm, r.Welfare, 1.96*r.WelfareSE, r.Millis)
		}
	case "fig8d":
		rows, err := expr.Fig8d(p)
		if err != nil {
			return err
		}
		fmt.Println("== Fig 8(d): budget skew under real Param (twitter) ==")
		fmt.Fprintln(w, "split\twelfare\t±95%\tmillis")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\n", r.Split, r.Welfare, 1.96*r.WelfareSE, r.Millis)
		}
	case "fig9":
		for i, net := range []string{"orkut", "douban-book", "douban-movie"} {
			rows, err := expr.Fig9(net, nil, p)
			if err != nil {
				return err
			}
			fmt.Printf("== Fig 9(%c): propagation vs externality, %s ==\n", 'a'+i, net)
			fmt.Fprintln(w, "budget %\twelfare\tBDHS-Step\tBDHS-Concave\t% of step benchmark")
			for _, r := range rows {
				fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\t%.1f\n",
					r.BudgetPct, r.Welfare, r.StepBenchmark, r.ConcBenchmark, r.ReachedStepPct)
			}
			w.Flush()
		}
	case "fig9d":
		rows, err := expr.Fig9d(p)
		if err != nil {
			return err
		}
		fmt.Println("== Fig 9(d): scalability of bundleGRD (orkut) ==")
		fmt.Fprintln(w, "network %\tnodes\tvariant\twelfare\tmillis")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%d\t%s\t%.1f\t%.1f\n", r.NetworkPct, r.Nodes, r.Variant, r.Welfare, r.Millis)
		}
	case "table5":
		rows, err := expr.Table5(p)
		if err != nil {
			return err
		}
		fmt.Println("== Table 5: learned value/noise parameters (simulated auctions) ==")
		fmt.Fprintln(w, "itemset\tprice\ttrue value\tlearned value\ttrue noise var\tlearned var")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				r.Itemset, r.Price, r.TrueValue, r.LearnedValue, r.TrueNoiseVar, r.LearnedVar)
		}
	case "table6":
		rows, err := expr.Table6(p)
		if err != nil {
			return err
		}
		fmt.Println("== Table 6: #RR sets generated (real Param, twitter) ==")
		fmt.Fprintln(w, "budget split\tbundleGRD\tMAX_IMM\tIMM_MAX")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\n", r.Split, r.BundleGRD, r.MaxIMM, r.IMMMax)
		}
	default:
		return fmt.Errorf("unknown target %q", target)
	}
	return nil
}
