package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},             // 1024µs ≤ 2^10
		{time.Second, 20},                  // 1e6µs ≤ 2^20
		{30 * time.Minute, NumBuckets - 1}, // beyond the finite range
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestTraceSpansAccumulate(t *testing.T) {
	tr := NewTrace("abc", true)
	ctx := NewContext(context.Background(), tr)
	for i := 0; i < 3; i++ {
		end := StartSpan(ctx, "rrset_grow")
		end()
		end() // idempotent: the second call must not double-record
	}
	st := tr.Stages()
	if st["rrset_grow"].Count != 3 {
		t.Fatalf("rrset_grow count = %d, want 3", st["rrset_grow"].Count)
	}
	if tr.ID() != "abc" {
		t.Fatalf("ID = %q", tr.ID())
	}
}

func TestNilAndDisabledTrace(t *testing.T) {
	var nilTrace *Trace
	nilTrace.StartSpan("x")() // must not panic
	nilTrace.Record("x", time.Second)
	if nilTrace.ID() != "" || nilTrace.Enabled() || nilTrace.Stages() != nil {
		t.Fatal("nil trace must read as empty")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must carry no trace")
	}
	StartSpan(context.Background(), "x")() // no-op end

	off := NewTrace("id", false)
	off.StartSpan("x")()
	if off.Stages() != nil {
		t.Fatal("disabled trace must record nothing")
	}
	if off.ID() != "id" {
		t.Fatal("disabled trace keeps its id")
	}
}

func TestSanitizeID(t *testing.T) {
	if got := SanitizeID("ok-123"); got != "ok-123" {
		t.Fatalf("SanitizeID(ok-123) = %q", got)
	}
	if got := SanitizeID("bad\nid\x00 here"); got != "badidhere" {
		t.Fatalf("SanitizeID = %q", got)
	}
	if got := SanitizeID(strings.Repeat("a", 200)); len(got) != maxTraceIDLen {
		t.Fatalf("len = %d, want %d", len(got), maxTraceIDLen)
	}
	if got := SanitizeID("\n\x01"); got == "" {
		t.Fatal("all-control input must mint a fresh id")
	}
}

func TestMetricsObserveAndSnapshot(t *testing.T) {
	m := NewMetrics()
	lbl := []Label{{Name: "route", Value: "POST /v1/allocate"}}
	m.Observe("welmax_http_request_duration_seconds", lbl, 3*time.Microsecond)
	m.Observe("welmax_http_request_duration_seconds", lbl, time.Second)
	snaps := m.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d series, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.SumSeconds < 1.0 || s.SumSeconds > 1.1 {
		t.Fatalf("sum = %g", s.SumSeconds)
	}
	if s.Buckets[2] != 1 || s.Buckets[20] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
}

func TestMetricsConcurrentObserve(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lbl := []Label{{Name: "stage", Value: "grow"}}
			for i := 0; i < 500; i++ {
				m.Observe("welmax_stage_duration_seconds", lbl, time.Duration(i)*time.Microsecond)
				if i%100 == 0 {
					m.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snaps := m.Snapshot()
	if len(snaps) != 1 || snaps[0].Count != 4000 {
		t.Fatalf("snapshot = %+v", snaps)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := NewMetrics()
	b := NewMetrics()
	lbl := []Label{{Name: "route", Value: "GET /v1/stats"}}
	a.Observe("m", lbl, time.Millisecond)
	a.Observe("m", lbl, time.Millisecond)
	b.Observe("m", lbl, 2*time.Millisecond)
	b.Observe("other", nil, time.Microsecond)
	merged := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if len(merged) != 2 {
		t.Fatalf("got %d series", len(merged))
	}
	byName := map[string]HistSnapshot{}
	for _, s := range merged {
		byName[s.Name] = s
	}
	if byName["m"].Count != 3 {
		t.Fatalf("merged count = %d, want 3", byName["m"].Count)
	}
	if byName["m"].Buckets[bucketIndex(time.Millisecond)] != 2 {
		t.Fatalf("merged buckets = %v", byName["m"].Buckets)
	}
	if byName["other"].Count != 1 {
		t.Fatalf("other count = %d", byName["other"].Count)
	}
}

func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	m.Observe("welmax_job_duration_seconds", []Label{{Name: "kind", Value: "allocate"}}, time.Millisecond)
	var sb strings.Builder
	WritePrometheus(&sb, m.Snapshot(), []Gauge{
		{Name: "welmax_graphs", Value: 2},
		{Name: "welmax_graph_cost_ratio", Labels: []Label{{Name: "graph_id", Value: `g"1`}}, Value: 0.5},
	})
	text := sb.String()
	for _, want := range []string{
		"# TYPE welmax_job_duration_seconds histogram\n",
		`welmax_job_duration_seconds_bucket{kind="allocate",le="+Inf"} 1`,
		`welmax_job_duration_seconds_count{kind="allocate"} 1`,
		"# TYPE welmax_graphs gauge\n",
		"welmax_graphs 2\n",
		`welmax_graph_cost_ratio{graph_id="g\"1"} 0.5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	// Cumulative buckets: the +Inf bucket must equal the count.
	if !strings.Contains(text, `le="0.001024"} 1`) {
		t.Fatalf("1ms should land at the 2^10µs bound:\n%s", text)
	}
}
