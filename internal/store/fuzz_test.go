package store_test

import (
	"bytes"
	"errors"
	"testing"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/imm"
	"uicwelfare/internal/prima"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/store"
)

// fuzzGraph is the fixed graph fuzzed sketch decodes validate against.
func fuzzGraph() *graph.Graph {
	return graph.ErdosRenyi(30, 90, stats.NewRNG(77)).WeightedCascade()
}

// typedCodecError reports whether err is one of the codec's declared
// rejection modes — the contract the fuzzers enforce: malformed input
// must map to a typed error, never a panic or an untyped surprise.
func typedCodecError(err error) bool {
	return errors.Is(err, store.ErrBadMagic) ||
		errors.Is(err, store.ErrBadVersion) ||
		errors.Is(err, store.ErrChecksum) ||
		errors.Is(err, store.ErrTruncated) ||
		errors.Is(err, store.ErrCorrupt)
}

// mutations derives the standard corrupt variants of a valid encode:
// truncations at interesting boundaries and single bit flips.
func mutations(valid []byte) [][]byte {
	out := [][]byte{valid}
	for _, cut := range []int{0, 7, 8, 12, 19, 20, len(valid) / 2, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			out = append(out, valid[:cut])
		}
	}
	for _, pos := range []int{0, 9, 15, len(valid) / 2, len(valid) - 2} {
		if pos >= 0 && pos < len(valid) {
			flipped := append([]byte(nil), valid...)
			flipped[pos] ^= 0x40
			out = append(out, flipped)
		}
	}
	return out
}

func FuzzDecodeGraph(f *testing.F) {
	var buf bytes.Buffer
	if err := store.EncodeGraph(&buf, "fuzz-seed", fuzzGraph()); err != nil {
		f.Fatal(err)
	}
	for _, seed := range mutations(buf.Bytes()) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		name, g, err := store.DecodeGraph(bytes.NewReader(data))
		if err != nil {
			if !typedCodecError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A successful decode must round-trip byte-identically — the
		// structure is internally consistent, not merely non-crashing.
		var re bytes.Buffer
		if err := store.EncodeGraph(&re, name, g); err != nil {
			t.Fatalf("re-encode of accepted graph failed: %v", err)
		}
	})
}

func FuzzDecodeSketch(f *testing.F) {
	g := fuzzGraph()
	psk := prima.BuildSketch(g, []int{3, 2}, prima.Options{}, stats.NewRNG(1))
	isk := imm.BuildSketch(g, 3, imm.Options{}, stats.NewRNG(2))
	for _, sk := range []any{psk, isk} {
		var buf bytes.Buffer
		if err := store.EncodeSketch(&buf, sk); err != nil {
			f.Fatal(err)
		}
		for _, seed := range mutations(buf.Bytes()) {
			f.Add(seed)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sk, err := store.DecodeSketch(bytes.NewReader(data), g)
		if err != nil {
			if !typedCodecError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		var re bytes.Buffer
		if err := store.EncodeSketch(&re, sk); err != nil {
			t.Fatalf("re-encode of accepted sketch failed: %v", err)
		}
	})
}

func FuzzReadSketchStream(f *testing.F) {
	g := fuzzGraph()
	psk := prima.BuildSketch(g, []int{3}, prima.Options{}, stats.NewRNG(3))
	isk := imm.BuildSketch(g, 2, imm.Options{}, stats.NewRNG(4))
	var buf bytes.Buffer
	if err := store.WriteSketchStreamEntry(&buf, "key-a", psk); err != nil {
		f.Fatal(err)
	}
	if err := store.WriteSketchStreamEntry(&buf, "key-b", isk); err != nil {
		f.Fatal(err)
	}
	for _, seed := range mutations(buf.Bytes()) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := store.ReadSketchStream(bytes.NewReader(data), g, func(key string, sketch any) error {
			return nil
		})
		if n < 0 {
			t.Fatalf("negative entry count %d", n)
		}
		if err != nil && !typedCodecError(err) {
			t.Fatalf("untyped stream error: %v", err)
		}
	})
}
