// Discount store: the §5 pricing extension. A retailer sells three
// complementary smart-home devices and considers a bundle discount
// (submodular pricing). Because supermodular value minus submodular price
// is still supermodular, bundleGRD's guarantee carries over — and the
// discount visibly lifts welfare by making bundles adoptable earlier.
// The example also contrasts the IC and LT diffusion semantics on the
// same campaign.
//
// Run with: go run ./examples/discountstore
package main

import (
	"fmt"

	welfare "uicwelfare"
)

func main() {
	rng := welfare.NewRNG(21)
	g := welfare.GenerateNetwork("douban-book", 0.5, 21)
	fmt.Printf("network: %v\n\n", g)

	// Three devices: hub, camera, doorbell. Alone each is worth slightly
	// less than its price; together they complete a system.
	val, err := welfare.TableValuation(3, []float64{
		0,  // ∅
		9,  // {hub}
		7,  // {camera}
		19, // {hub,camera}
		7,  // {doorbell}
		19, // {hub,doorbell}
		15, // {camera,doorbell}
		34, // all three
	})
	if err != nil {
		panic(err)
	}
	base := []float64{10, 8, 8}
	noise := []welfare.NoiseDist{
		welfare.GaussianNoise(1), welfare.GaussianNoise(1), welfare.GaussianNoise(1),
	}

	flat, err := welfare.NewModel(val, base, noise)
	if err != nil {
		panic(err)
	}
	discounted, err := welfare.NewModelWithPrice(val, welfare.VolumeDiscount(base, 1.5, 0.4), base, noise)
	if err != nil {
		panic(err)
	}

	all := welfare.NewItemSet(0, 1, 2)
	fmt.Printf("bundle price: %.1f flat vs %.1f with volume discount\n",
		flat.Price(all), discounted.Price(all))
	fmt.Printf("bundle utility: %+.1f flat vs %+.1f discounted\n\n",
		flat.DetUtility(all), discounted.DetUtility(all))

	budgets := []int{30, 30, 30}
	for _, tc := range []struct {
		name    string
		m       *welfare.Model
		cascade welfare.Cascade
	}{
		{"flat prices, IC", flat, welfare.CascadeIC},
		{"discounted, IC", discounted, welfare.CascadeIC},
		{"discounted, LT", discounted, welfare.CascadeLT},
	} {
		p, err := welfare.NewProblem(g, tc.m, budgets)
		if err != nil {
			panic(err)
		}
		res := welfare.BundleGRD(p, welfare.Options{Cascade: tc.cascade}, rng)
		sim := welfare.NewSimulator(g, tc.m)
		sim.Cascade = tc.cascade
		est := sim.EstimateWelfare(res.Alloc, welfare.NewRNG(5), 10000)
		fmt.Printf("%-18s welfare %8.1f ± %6.1f\n", tc.name, est.Mean, 1.96*est.StdErr)
	}

	fmt.Println("\nthe discount turns a marginal bundle into a propagating one.")
	fmt.Println("under weighted-cascade weights (in-probabilities summing to 1), LT")
	fmt.Println("gives every user exactly one influencing friend — denser live-edge")
	fmt.Println("worlds than IC's independent coin flips, hence the larger cascade.")
}
