package bdhs

import (
	"math"
	"testing"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/utility"
)

// posModel returns a one-item model with deterministic utility u > 0.
func posModel(u float64) *utility.Model {
	val, err := utility.NewTableValuation(1, []float64{0, u + 1})
	if err != nil {
		panic(err)
	}
	return utility.MustModel(val, []float64{1}, []stats.Dist{stats.PointMass{}})
}

func TestTwoHopSupport(t *testing.T) {
	// 0 -> 1 -> 2, 3 -> 2
	g := graph.FromEdges(4, [][3]float64{{0, 1, 1}, {1, 2, 1}, {3, 2, 1}})
	if got := TwoHopSupport(g, 2); got != 3 { // 1, 3 at one hop; 0 at two
		t.Errorf("support of 2 = %d, want 3", got)
	}
	if got := TwoHopSupport(g, 0); got != 0 {
		t.Errorf("support of source = %d, want 0", got)
	}
	if got := TwoHopSupport(g, 1); got != 1 {
		t.Errorf("support of 1 = %d, want 1", got)
	}
}

func TestStepBenchmarkCompleteGraph(t *testing.T) {
	// complete graph with p=1: every node always has a live supporting
	// in-neighbor, so welfare = n·U(I*)
	g := graph.Complete(6, 1)
	m := posModel(2)
	got := StepBenchmark(g, m, stats.NewRNG(1), 50)
	if math.Abs(got-12) > 1e-9 {
		t.Errorf("step benchmark %v, want 12", got)
	}
}

func TestStepBenchmarkIsolatedNodes(t *testing.T) {
	g := graph.NewBuilder(5).Build() // no edges
	m := posModel(2)
	if got := StepBenchmark(g, m, stats.NewRNG(2), 20); got != 0 {
		t.Errorf("isolated nodes welfare %v, want 0", got)
	}
}

func TestStepBenchmarkProbabilityScaling(t *testing.T) {
	// star leaves have one in-edge with p=0.5: each leaf supported with
	// probability 0.5; hub has no in-edges.
	g := graph.Star(5, 0.5)
	m := posModel(1)
	got := StepBenchmark(g, m, stats.NewRNG(3), 200000)
	want := 4 * 0.5 * 1.0
	if math.Abs(got-want) > 0.05 {
		t.Errorf("step benchmark %v, want %v", got, want)
	}
}

func TestStepBenchmarkNonPositiveBest(t *testing.T) {
	val, _ := utility.NewTableValuation(1, []float64{0, 0.5})
	m := utility.MustModel(val, []float64{1}, []stats.Dist{stats.PointMass{}})
	g := graph.Complete(4, 1)
	if got := StepBenchmark(g, m, stats.NewRNG(4), 10); got != 0 {
		t.Errorf("negative best-set welfare %v, want 0", got)
	}
}

func TestConcaveBenchmark(t *testing.T) {
	// line 0 -> 1 -> 2 with uniform p: supports are 0, 1, 2
	g := graph.Line(3, 0.5)
	m := posModel(1)
	p := 0.5
	want := 0 + (1 - math.Pow(0.5, 1)) + (1 - math.Pow(0.5, 2))
	got := ConcaveBenchmark(g, m, p)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("concave benchmark %v, want %v", got, want)
	}
}

func TestConcaveBenchmarkHigherPGivesMore(t *testing.T) {
	rng := stats.NewRNG(5)
	g := graph.ErdosRenyi(50, 200, rng)
	m := posModel(1)
	lo := ConcaveBenchmark(g, m, 0.01)
	hi := ConcaveBenchmark(g, m, 0.5)
	if hi <= lo {
		t.Errorf("concave benchmark not increasing in p: %v vs %v", lo, hi)
	}
}

func TestAssignmentWelfareStep(t *testing.T) {
	// two nodes 0 <-> 1 with p=1; same assignment everywhere
	g := graph.FromEdges(2, [][3]float64{{0, 1, 1}, {1, 0, 1}})
	m := posModel(3)
	assign := []itemset.Set{itemset.New(0), itemset.New(0)}
	got := AssignmentWelfareStep(g, m, assign, stats.NewRNG(6), 10)
	if math.Abs(got-6) > 1e-9 {
		t.Errorf("welfare %v, want 6", got)
	}
	// mismatched assignments get no support
	val2, _ := utility.NewTableValuation(2, []float64{0, 4, 4, 8})
	m2 := utility.MustModel(val2, []float64{1, 1},
		[]stats.Dist{stats.PointMass{}, stats.PointMass{}})
	assign2 := []itemset.Set{itemset.New(0), itemset.New(1)}
	if got := AssignmentWelfareStep(g, m2, assign2, stats.NewRNG(7), 10); got != 0 {
		t.Errorf("mismatched assignments welfare %v, want 0", got)
	}
}

func TestAssignmentWelfareSkipsEmpty(t *testing.T) {
	g := graph.FromEdges(2, [][3]float64{{0, 1, 1}, {1, 0, 1}})
	m := posModel(3)
	assign := []itemset.Set{itemset.Empty, itemset.New(0)}
	if got := AssignmentWelfareStep(g, m, assign, stats.NewRNG(8), 10); got != 0 {
		t.Errorf("welfare %v, want 0 (no supporting neighbor)", got)
	}
}
