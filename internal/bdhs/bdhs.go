// Package bdhs implements the welfare-maximization-with-network-
// externalities baselines of Bhattacharya et al. used in §4.3.4.4: item
// (sub)sets are assigned to nodes directly — no propagation — and a
// node's realized value is scaled by an externality function of how many
// neighbors hold the same assignment. Following the paper's conversion,
// each itemset acts as one virtual item, the models have no budget (so
// the benchmark assigns the best itemset to every node), and two
// externality shapes are evaluated: a 1-step function on sampled
// live-edge graphs (BDHS-Step) and the concave function 1-(1-p)^s on the
// 2-hop support (BDHS-Concave).
package bdhs

import (
	"uicwelfare/internal/diffusion"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/utility"
)

// StepBenchmark estimates the total social welfare BDHS-Step achieves
// with no budget: every node is assigned the deterministic-utility-
// maximizing itemset I*, and on each sampled live-edge world a node
// realizes U(I*) iff at least one live in-neighbor shares the assignment
// (the 1-step externality), averaging over `worlds` samples.
func StepBenchmark(g *graph.Graph, m *utility.Model, rng *stats.RNG, worlds int) float64 {
	best := m.BestDetSet()
	u := m.DetUtility(best)
	if best.IsEmpty() || u <= 0 {
		return 0
	}
	if worlds <= 0 {
		worlds = 1
	}
	total := 0.0
	for w := 0; w < worlds; w++ {
		world := diffusion.SampleLiveEdgeWorld(g, rng)
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			if len(world.LiveInNeighbors(v)) > 0 {
				total += u
			}
		}
	}
	return total / float64(worlds)
}

// ConcaveBenchmark computes the BDHS-Concave no-budget welfare under a
// uniform edge probability p: every node holds I* and realizes
// U(I*)·(1-(1-p)^{s_v}) where s_v is the size of v's 2-hop in-support.
func ConcaveBenchmark(g *graph.Graph, m *utility.Model, p float64) float64 {
	best := m.BestDetSet()
	u := m.DetUtility(best)
	if best.IsEmpty() || u <= 0 {
		return 0
	}
	total := 0.0
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		s := TwoHopSupport(g, v)
		total += u * (1 - pow(1-p, s))
	}
	return total
}

// pow is an integer-exponent power; (1-p)^s for potentially large s.
func pow(base float64, exp int) float64 {
	r := 1.0
	for exp > 0 {
		if exp&1 == 1 {
			r *= base
		}
		base *= base
		exp >>= 1
	}
	return r
}

// TwoHopSupport returns |{u != v : u reaches v in at most 2 hops}|, the
// friends-of-friends support set size of the BDHS model.
func TwoHopSupport(g *graph.Graph, v graph.NodeID) int {
	seen := map[graph.NodeID]bool{}
	in1, _ := g.InEdges(v)
	for _, u := range in1 {
		if u != v {
			seen[u] = true
		}
	}
	for _, u := range in1 {
		in2, _ := g.InEdges(u)
		for _, w := range in2 {
			if w != v {
				seen[w] = true
			}
		}
	}
	return len(seen)
}

// AssignmentWelfareStep evaluates an arbitrary per-node assignment under
// the 1-step externality on sampled live-edge worlds; used by tests and
// by callers exploring budgeted BDHS variants. assign[v] is the itemset
// held by v (Empty for unassigned nodes).
func AssignmentWelfareStep(g *graph.Graph, m *utility.Model, assign []itemset.Set, rng *stats.RNG, worlds int) float64 {
	if worlds <= 0 {
		worlds = 1
	}
	total := 0.0
	for w := 0; w < worlds; w++ {
		world := diffusion.SampleLiveEdgeWorld(g, rng)
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			if assign[v].IsEmpty() {
				continue
			}
			supported := false
			for _, u := range world.LiveInNeighbors(v) {
				if assign[u] == assign[v] {
					supported = true
					break
				}
			}
			if supported {
				total += m.DetUtility(assign[v])
			}
		}
	}
	return total / float64(worlds)
}
