package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"uicwelfare/internal/journal"
)

// EventsResponse is the body of GET /v1/events in query (non-stream)
// mode. NextCursor is the value to pass as ?cursor= to resume exactly
// where this page ended; it advances even when every examined event was
// filtered out, so pagination always terminates.
type EventsResponse struct {
	Events []journal.Event `json:"events"`
	// NextCursor resumes the query; Node tells a merged-stream consumer
	// whose cursor it is (cursors are recorder-local).
	NextCursor uint64 `json:"next_cursor"`
	Node       string `json:"node,omitempty"`
	// Partial and Errors appear on the router's merged form when one or
	// more shards could not be queried.
	Partial bool              `json:"partial,omitempty"`
	Errors  map[string]string `json:"errors,omitempty"`
}

// ParseEventQuery decodes the GET /v1/events query parameters
// (cursor, limit, type, graph, node, trace, since) shared by the
// backend and router forms of the endpoint.
func ParseEventQuery(values url.Values) (journal.Query, error) {
	var q journal.Query
	if raw := values.Get("cursor"); raw != "" {
		c, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return q, fmt.Errorf("bad cursor %q", raw)
		}
		q.After = c
	}
	if raw := values.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return q, fmt.Errorf("bad limit %q", raw)
		}
		q.Limit = n
	}
	q.Type = values.Get("type")
	q.Graph = values.Get("graph")
	q.Node = values.Get("node")
	q.Trace = values.Get("trace")
	if raw := values.Get("since"); raw != "" {
		ts, err := time.Parse(time.RFC3339Nano, raw)
		if err != nil {
			return q, fmt.Errorf("bad since %q (want RFC 3339)", raw)
		}
		q.Since = ts
	}
	return q, nil
}

// wantsEventStream reports whether the request asked for the SSE live
// tail (?stream=1 or an Accept of text/event-stream) instead of the
// one-shot query form.
func wantsEventStream(r *http.Request) bool {
	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" || v == "sse" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// handleEvents implements GET /v1/events: the control-plane flight
// recorder's query endpoint (cursor pagination plus type/graph/node/
// since filters) and, in stream mode, a live SSE tail of matching
// events.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	q, err := ParseEventQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if wantsEventStream(r) {
		StreamEvents(w, r, s.flight, q)
		return
	}
	events, next := s.flight.Events(q)
	if events == nil {
		events = []journal.Event{}
	}
	writeJSON(w, http.StatusOK, EventsResponse{Events: events, NextCursor: next, Node: s.nodeID})
}

// StreamEvents serves a live SSE tail of one recorder's events matching
// q: the retained ring events after q.After first (so a reconnecting
// client with a cursor misses nothing the ring still holds), then live
// events as they are recorded. Each frame's SSE event name is the
// journal event type. Exported because the cluster router tails its own
// recorder through exactly this path.
func StreamEvents(w http.ResponseWriter, r *http.Request, rec *journal.Recorder, q journal.Query) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	// Subscribe before replaying so nothing recorded between the two is
	// lost; live events the replay already covered dedupe on Seq.
	ch, cancel := rec.Subscribe(256)
	defer cancel()
	replayQ := q
	replayQ.Limit = journal.MaxLimit
	past, last := rec.Events(replayQ)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	write := func(e journal.Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, e := range past {
		if !write(e) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e := <-ch:
			if e.Seq <= last || !q.Match(e) {
				continue
			}
			if !write(e) {
				return
			}
		}
	}
}
