// Package progress defines the progress-reporting callback shared by the
// long-running phases of an allocation: RR-sketch construction (imm,
// prima) and Monte-Carlo welfare estimation (uic). It sits below all of
// them so the sketch builders, the estimators, core's planners, the root
// welfare package, and the welmaxd job stream can exchange events without
// import cycles.
package progress

// Stage identifies which phase of a run an event reports on.
type Stage string

const (
	// StageSketch covers RR-set sampling: the adaptive θ-estimation
	// rounds and the final from-scratch regeneration.
	StageSketch Stage = "sketch"
	// StageEstimate covers Monte-Carlo welfare estimation runs.
	StageEstimate Stage = "estimate"
	// StageSelect covers the final greedy seed selection; its events
	// carry the incremental seed prefix chosen so far.
	StageSelect Stage = "select"
)

// Event is one progress report. For StageSketch, Round counts growth
// phases within one sketch build (the adaptive rounds, then the final
// regeneration) and Done/Total are RR-set counts against the current
// round's target — Total may change between rounds as the adaptive
// search tightens θ. For StageEstimate, Done/Total are Monte-Carlo runs
// finished versus requested. For StageSelect, Done/Total are seeds
// selected versus the selection budget and SeedPrefix is the ordering
// so far.
type Event struct {
	Stage Stage
	Round int
	Done  int
	Total int
	// SeedPrefix, on StageSelect events, is the ordered seed prefix the
	// greedy selection has committed to so far (node ids as int64, the
	// wire form). Each event carries a fresh slice safe to retain.
	SeedPrefix []int64
}

// Func receives events. Implementations must be fast (they run on the
// hot sampling path) and, when the run uses parallel estimation workers,
// safe for concurrent calls.
type Func func(Event)
