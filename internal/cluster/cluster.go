// Package cluster scales welmaxd horizontally: a routing tier that
// fronts N backend daemons and presents the single-node HTTP API
// unchanged. RR-sketch memory is the binding resource of the serving
// system — a sketch is rebuilt wherever its graph lives — so the router
// partitions graphs (and with them the sketch caches) across backends by
// rendezvous (HRW) hashing on the content-addressed graph id:
//
//   - POST /v1/graphs and every graph-scoped route (allocate, estimate,
//     warm, sketches) proxy to the graph's owning backend;
//   - multi-graph routes (GET /v1/graphs, /v1/stats, /v1/algorithms) fan
//     out and merge;
//   - job routes follow the backend encoded in the job id ("b1-j7" —
//     backends mint cluster-scoped ids when started with -node).
//
// The router probes each backend's GET /v1/healthz, marks backends
// down/up, and on a membership change re-routes graphs: the graph's
// .wmg bytes (spilled to the router's catalog directory at registration
// or adoption, re-fetched from a live holder if the spill is lost) are
// re-registered on the new HRW owner, and — when the old
// owner is still alive — its warm sketches are exported and imported
// into the new owner through the .wms stream container, so rebalancing
// does not discard sketch work. Content-addressed graph ids and
// serializable sketches (PR 3's internal/store) are what make both
// transfers possible.
//
// Per-shard behaviors surface through the router untouched: a
// backend's cost-based admission reject (429 with a retryable body)
// relays verbatim, and the router's /v1/stats aggregates each shard's
// batch-scheduler and admission counters alongside its own routing
// counters.
package cluster

import (
	"fmt"
	"net/url"
	"strings"
)

// Backend is one welmaxd shard: its cluster node name (the -node flag it
// was started with, echoed by its /v1/healthz) and its base URL.
type Backend struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ParseBackends parses the router's -route topology spec:
// "b0=http://127.0.0.1:8081,b1=http://127.0.0.1:8082". Names must be
// unique, non-empty, and free of the characters the wire formats assign
// meaning to ("-" ends the node prefix of a job id, "," and "=" delimit
// the spec itself).
func ParseBackends(spec string) ([]Backend, error) {
	var out []Backend
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rawURL, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: backend %q: want name=url", part)
		}
		if name == "" || strings.ContainsAny(name, "-,=/ ") {
			return nil, fmt.Errorf("cluster: bad backend name %q (letters, digits, dots only)", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate backend name %q", name)
		}
		u, err := url.Parse(rawURL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: backend %q: bad url %q", name, rawURL)
		}
		seen[name] = true
		out = append(out, Backend{Name: name, URL: strings.TrimRight(rawURL, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no backends in %q", spec)
	}
	return out, nil
}

// JobNode extracts the node name from a cluster-scoped job id ("b1-j7"
// → "b1"). Single-node ids ("j7") have no node and report ok = false.
func JobNode(jobID string) (node string, ok bool) {
	i := strings.LastIndexByte(jobID, '-')
	if i <= 0 {
		return "", false
	}
	return jobID[:i], true
}
