package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list. Each non-empty
// line not starting with '#' or '%' is "u v" or "u v p". Node ids may be
// arbitrary non-negative integers; they are compacted to 0..n-1 in first-
// appearance order. If a line omits p the probability defaults to 0 and
// should be reset afterwards with WeightedCascade or UniformProb. When
// undirected is true every edge is inserted in both directions.
func ReadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	type rawEdge struct {
		u, v NodeID
		p    float64
	}
	var raw []rawEdge
	ids := make(map[int64]NodeID)
	intern := func(x int64) NodeID {
		if id, ok := ids[x]; ok {
			return id
		}
		id := NodeID(len(ids))
		ids[x] = id
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineno, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q", lineno, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q", lineno, fields[1])
		}
		p := 0.0
		if len(fields) >= 3 {
			p, err = strconv.ParseFloat(fields[2], 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("graph: line %d: bad probability %q", lineno, fields[2])
			}
		}
		raw = append(raw, rawEdge{intern(u), intern(v), p})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}

	b := NewBuilder(len(ids))
	for _, e := range raw {
		if undirected {
			b.AddUndirected(e.u, e.v, e.p)
		} else {
			b.AddEdge(e.u, e.v, e.p)
		}
	}
	return b.Build(), nil
}

// LoadEdgeList reads an edge-list file from disk.
func LoadEdgeList(path string, undirected bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f, undirected)
}

// WriteEdgeList writes the graph as "u v p" lines, one directed edge per
// line, preceded by a comment header.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.N(), g.M())
	for u := NodeID(0); int(u) < g.N(); u++ {
		ts, ps := g.OutEdges(u)
		for i, v := range ts {
			fmt.Fprintf(bw, "%d %d %g\n", u, v, ps[i])
		}
	}
	return bw.Flush()
}

// SaveEdgeList writes the graph to a file on disk.
func SaveEdgeList(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
