package core

import (
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
)

// BruteForceOPT exhaustively searches all allocations that spend each
// item's full budget and returns the best one with its estimated welfare.
// The search space is Π_i C(n, b_i), so this is for tiny test instances
// only (it panics beyond ~100k candidates). Welfare is estimated with
// `runs` Monte-Carlo diffusions per candidate using a fixed RNG seed per
// candidate so the comparison is fair.
func BruteForceOPT(p *Problem, runs int, rng *stats.RNG) (*uic.Allocation, float64) {
	n := p.G.N()
	candidates := 1.0
	for _, b := range p.Budgets {
		candidates *= float64(binom(n, b))
		if candidates > 1e5 {
			panic("core: BruteForceOPT instance too large")
		}
	}
	sim := uic.NewSimulator(p.G, p.Model)
	var (
		best        *uic.Allocation
		bestWelfare = -1.0
	)
	seedBase := rng.Uint64()
	var recurse func(item int, alloc *uic.Allocation)
	recurse = func(item int, alloc *uic.Allocation) {
		if item == p.K() {
			w := sim.EstimateWelfare(alloc, stats.NewRNG(seedBase), runs).Mean
			if w > bestWelfare {
				bestWelfare = w
				best = alloc.Clone()
			}
			return
		}
		b := p.Budgets[item]
		if b > n {
			b = n
		}
		choose(n, b, func(nodes []graph.NodeID) {
			alloc.Seeds[item] = nodes
			recurse(item+1, alloc)
			alloc.Seeds[item] = nil
		})
	}
	recurse(0, uic.NewAllocation(p.K()))
	return best, bestWelfare
}

// binom returns C(n, k) with saturation to avoid overflow in the size
// guard.
func binom(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := int64(1)
	for i := 0; i < k; i++ {
		r = r * int64(n-i) / int64(i+1)
		if r > 1<<40 {
			return 1 << 40
		}
	}
	return r
}

// choose enumerates all k-subsets of [0, n).
func choose(n, k int, fn func([]graph.NodeID)) {
	idx := make([]graph.NodeID, k)
	var rec func(start, pos int)
	rec = func(start, pos int) {
		if pos == k {
			fn(idx)
			return
		}
		for v := start; v <= n-(k-pos); v++ {
			idx[pos] = graph.NodeID(v)
			rec(v+1, pos+1)
		}
	}
	rec(0, 0)
}
