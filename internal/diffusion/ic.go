// Package diffusion implements the single-item independent cascade (IC)
// model: forward Monte-Carlo spread simulation, live-edge possible worlds,
// and an exact spread computation for tiny graphs used in tests. It is the
// classical substrate (Kempe et al. 2003) on which both the influence
// maximization stack and the UIC model build.
package diffusion

import (
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
)

// Sim runs forward IC simulations over one graph, reusing its internal
// buffers across runs. It is not safe for concurrent use; create one Sim
// per goroutine.
type Sim struct {
	g *graph.Graph
	// visited epoch stamps: visited[v] == epoch means v is active this run
	visited []int32
	epoch   int32
	queue   []graph.NodeID
}

// NewSim returns a simulator for g.
func NewSim(g *graph.Graph) *Sim {
	return &Sim{
		g:       g,
		visited: make([]int32, g.N()),
		queue:   make([]graph.NodeID, 0, 1024),
	}
}

// RunOnce performs one IC cascade from the seed set and returns the number
// of activated nodes (including seeds). Each edge is flipped lazily when
// its tail first activates, which is equivalent to sampling the full
// live-edge world up front.
func (s *Sim) RunOnce(seeds []graph.NodeID, rng *stats.RNG) int {
	s.epoch++
	if s.epoch == 0 { // wrapped around; reset stamps
		for i := range s.visited {
			s.visited[i] = -1
		}
		s.epoch = 1
	}
	q := s.queue[:0]
	active := 0
	for _, v := range seeds {
		if s.visited[v] == s.epoch {
			continue
		}
		s.visited[v] = s.epoch
		active++
		q = append(q, v)
	}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		ts, ps := s.g.OutEdges(u)
		for i, v := range ts {
			if s.visited[v] == s.epoch {
				continue
			}
			if rng.Bool(float64(ps[i])) {
				s.visited[v] = s.epoch
				active++
				q = append(q, v)
			}
		}
	}
	s.queue = q[:0]
	return active
}

// Spread estimates the expected spread sigma(seeds) by averaging runs
// Monte-Carlo cascades.
func (s *Sim) Spread(seeds []graph.NodeID, rng *stats.RNG, runs int) float64 {
	if runs <= 0 {
		runs = 1
	}
	total := 0
	for i := 0; i < runs; i++ {
		total += s.RunOnce(seeds, rng)
	}
	return float64(total) / float64(runs)
}

// SpreadSummary estimates the spread and returns the full Monte-Carlo
// summary, for callers that need confidence intervals.
func (s *Sim) SpreadSummary(seeds []graph.NodeID, rng *stats.RNG, runs int) stats.Summary {
	var sum stats.Summary
	for i := 0; i < runs; i++ {
		sum.Add(float64(s.RunOnce(seeds, rng)))
	}
	return sum
}

// Spread is a convenience wrapper allocating a fresh Sim.
func Spread(g *graph.Graph, seeds []graph.NodeID, rng *stats.RNG, runs int) float64 {
	return NewSim(g).Spread(seeds, rng, runs)
}
