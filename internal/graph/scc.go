package graph

// SCC computes strongly connected components with an iterative Tarjan
// algorithm. It returns a component id per node and the number of
// components. Component ids are assigned in reverse topological order of
// the condensation (Tarjan's natural order).
func SCC(g *Graph) (comp []int32, count int) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []NodeID
	var next int32

	type frame struct {
		v  NodeID
		ei int // next out-edge offset to explore
	}
	var call []frame

	for root := NodeID(0); int(root) < n; root++ {
		if index[root] != -1 {
			continue
		}
		call = append(call[:0], frame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			ts, _ := g.OutEdges(f.v)
			advanced := false
			for f.ei < len(ts) {
				w := ts[f.ei]
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && low[f.v] > index[w] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// finished v
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := &call[len(call)-1]
				if low[p.v] > low[v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(count)
					if w == v {
						break
					}
				}
				count++
			}
		}
	}
	return comp, count
}

// LargestSCC returns the subgraph induced by the largest strongly
// connected component, with nodes renumbered. The second return value
// maps new ids to original ids. The paper extracts the largest SCC of
// Flixster the same way.
func LargestSCC(g *Graph) (*Graph, []NodeID) {
	comp, count := SCC(g)
	if count == 0 {
		return NewBuilder(0).Build(), nil
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	return InducedSubgraph(g, func(v NodeID) bool { return comp[v] == int32(best) })
}

// InducedSubgraph returns the subgraph induced by the nodes for which
// keep returns true, with nodes renumbered densely, plus the new->old id
// mapping.
func InducedSubgraph(g *Graph, keep func(NodeID) bool) (*Graph, []NodeID) {
	oldToNew := make([]NodeID, g.N())
	var newToOld []NodeID
	for v := NodeID(0); int(v) < g.N(); v++ {
		if keep(v) {
			oldToNew[v] = NodeID(len(newToOld))
			newToOld = append(newToOld, v)
		} else {
			oldToNew[v] = -1
		}
	}
	b := NewBuilder(len(newToOld))
	for _, old := range newToOld {
		ts, ps := g.OutEdges(old)
		for i, t := range ts {
			if oldToNew[t] >= 0 {
				b.AddEdge(oldToNew[old], oldToNew[t], float64(ps[i]))
			}
		}
	}
	return b.Build(), newToOld
}

// BFSPrefix returns the subgraph induced by the first `want` nodes
// discovered by a breadth-first search from node 0 (falling back to
// unvisited nodes to cover disconnected graphs). The scalability
// experiment (Fig 9d) grows the network this way.
func BFSPrefix(g *Graph, want int) (*Graph, []NodeID) {
	if want >= g.N() {
		keepAll := func(NodeID) bool { return true }
		return InducedSubgraph(g, keepAll)
	}
	visited := make([]bool, g.N())
	order := make([]NodeID, 0, want)
	queue := make([]NodeID, 0, want)
	for start := NodeID(0); int(start) < g.N() && len(order) < want; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		order = append(order, start)
		for len(queue) > 0 && len(order) < want {
			v := queue[0]
			queue = queue[1:]
			ts, _ := g.OutEdges(v)
			for _, w := range ts {
				if !visited[w] {
					visited[w] = true
					order = append(order, w)
					if len(order) >= want {
						break
					}
					queue = append(queue, w)
				}
			}
		}
	}
	inPrefix := make([]bool, g.N())
	for _, v := range order {
		inPrefix[v] = true
	}
	return InducedSubgraph(g, func(v NodeID) bool { return inPrefix[v] })
}
