package cluster_test

import (
	"fmt"
	"testing"

	"uicwelfare/internal/cluster"
)

func TestHRWOwnerStability(t *testing.T) {
	three := []string{"b0", "b1", "b2"}
	two := []string{"b0", "b1"}

	counts := map[string]int{}
	moved := 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("g%032x", i)
		owner3, ok := cluster.Owner(three, key)
		if !ok {
			t.Fatal("no owner with three backends")
		}
		counts[owner3]++
		owner2, _ := cluster.Owner(two, key)
		// Removing b2 may only move b2's keys: anything b0/b1 owned
		// stays put — the property that keeps warm caches stable.
		if owner3 != "b2" && owner2 != owner3 {
			t.Fatalf("key %s moved %s -> %s when b2 left", key, owner3, owner2)
		}
		if owner3 == "b2" {
			moved++
		}
	}
	for _, b := range three {
		if counts[b] < 50 {
			t.Errorf("backend %s owns only %d/300 keys — distribution is skewed: %v", b, counts[b], counts)
		}
	}
	if moved == 0 {
		t.Error("b2 owned nothing; stability check was vacuous")
	}

	if _, ok := cluster.Owner(nil, "g1"); ok {
		t.Error("empty backend set produced an owner")
	}
}

func TestHRWRank(t *testing.T) {
	backends := []string{"b0", "b1", "b2", "b3"}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("g%d", i)
		rank := cluster.Rank(backends, key)
		if len(rank) != len(backends) {
			t.Fatalf("rank %v is not a permutation of %v", rank, backends)
		}
		owner, _ := cluster.Owner(backends, key)
		if rank[0] != owner {
			t.Fatalf("rank[0] = %s, Owner = %s", rank[0], owner)
		}
		seen := map[string]bool{}
		for _, b := range rank {
			if seen[b] {
				t.Fatalf("rank %v repeats %s", rank, b)
			}
			seen[b] = true
		}
	}
}

func TestParseBackends(t *testing.T) {
	got, err := cluster.ParseBackends("b0=http://127.0.0.1:8081, b1=http://127.0.0.1:8082/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "b0" || got[1].URL != "http://127.0.0.1:8082" {
		t.Errorf("parsed %+v", got)
	}
	for _, bad := range []string{
		"",
		"http://127.0.0.1:8081",     // no name
		"b0=http://x,b0=http://y",   // duplicate
		"b-0=http://127.0.0.1:8081", // dash collides with job-id syntax
		"b0=not a url",              // bad url
		"b0=",                       // empty url
	} {
		if _, err := cluster.ParseBackends(bad); err == nil {
			t.Errorf("ParseBackends(%q) accepted", bad)
		}
	}
}

func TestJobNode(t *testing.T) {
	for id, want := range map[string]string{
		"b0-j7":     "b0",
		"shard2-j1": "shard2",
		"j7":        "",
		"-j7":       "",
		"":          "",
	} {
		node, ok := cluster.JobNode(id)
		if (want == "") == ok || node != want {
			t.Errorf("JobNode(%q) = %q, %v; want %q", id, node, ok, want)
		}
	}
}
