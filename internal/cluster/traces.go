package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"uicwelfare/internal/service"
	"uicwelfare/internal/tracestore"
)

// The router half of the trace store's query surface. GET /v1/traces on
// the router merges the router's own retained trace fragments (edge
// dispatch/proxy spans) with every live shard's, behind the same
// composite "node:seq" cursor GET /v1/events uses. GET /v1/traces/{id}
// assembles the cross-tier waterfall: every fragment recorded under the
// id — the router's and the owning backend's — grafted into one span
// tree via the parent ids X-Welmax-Span-Id propagation stitched in.

// ClusterTracesResponse is the router's GET /v1/traces body. Cursors
// are store-local sequence numbers, so the merged cursor is composite:
// "router:4,b0:12,b1:9".
type ClusterTracesResponse struct {
	Traces     []tracestore.Record `json:"traces"`
	NextCursor string              `json:"next_cursor"`
	Partial    bool                `json:"partial,omitempty"`
	Errors     map[string]string   `json:"errors,omitempty"`
}

// traceValues re-encodes a trace query (plus a per-source cursor) as
// the backend endpoint's query parameters.
func traceValues(q tracestore.Query, cursor uint64, limit int) url.Values {
	vals := url.Values{}
	if cursor > 0 {
		vals.Set("cursor", strconv.FormatUint(cursor, 10))
	}
	if limit > 0 {
		vals.Set("limit", strconv.Itoa(limit))
	}
	if q.Route != "" {
		vals.Set("route", q.Route)
	}
	if q.Graph != "" {
		vals.Set("graph", q.Graph)
	}
	if q.MinMS > 0 {
		vals.Set("min_ms", strconv.FormatFloat(q.MinMS, 'f', -1, 64))
	}
	if !q.Since.IsZero() {
		vals.Set("since", q.Since.Format(timeRFC3339Nano))
	}
	return vals
}

// taggedTrace remembers which store a summary came from — records are
// already node-stamped, but the composite cursor needs the source name
// even for records a store imported from elsewhere.
type taggedTrace struct {
	src string
	rec tracestore.Record
}

// handleTraces implements the router's GET /v1/traces: the merged,
// time-ordered, cursor-paginated view over the router's and every live
// shard's retained trace summaries, with the same route/graph/min_ms/
// since filters as the backend form. A dead shard contributes nothing
// but an entry in "errors" with "partial": true.
func (r *Router) handleTraces(w http.ResponseWriter, req *http.Request) {
	values := req.URL.Query()
	cursors, baseCursor, err := parseMergedCursor(values.Get("cursor"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	values.Del("cursor")
	q, err := service.ParseTraceQuery(values)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cursorFor := func(node string) uint64 {
		if c, ok := cursors[node]; ok {
			return c
		}
		return baseCursor
	}

	limit := q.Limit
	if limit <= 0 {
		limit = tracestore.DefaultLimit
	}
	if limit > tracestore.MaxLimit {
		limit = tracestore.MaxLimit
	}

	type sourcePage struct {
		src     string
		records []tracestore.Record
		next    uint64
	}
	ownQ := q
	ownQ.After = cursorFor(routerNode)
	ownQ.Limit = limit
	ownRecords, ownNext := r.traces.Traces(ownQ)
	pages := []sourcePage{{src: routerNode, records: ownRecords, next: ownNext}}

	members := r.members.Snapshot()
	alive := make([]string, 0, len(members))
	errs := map[string]string{}
	for _, m := range members {
		if m.Healthy {
			alive = append(alive, m.Name)
		} else {
			errs[m.Name] = "backend down"
		}
	}
	shardPages := make([]sourcePage, len(alive))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for i, name := range alive {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			path := "/v1/traces?" + traceValues(q, cursorFor(name), limit).Encode()
			status, body, err := r.call(req.Context(), http.MethodGet, name, path, nil)
			if err != nil || status != http.StatusOK {
				mu.Lock()
				if err != nil {
					errs[name] = err.Error()
				} else {
					errs[name] = fmt.Sprintf("status %d", status)
				}
				mu.Unlock()
				return
			}
			var resp service.TracesResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				mu.Lock()
				errs[name] = err.Error()
				mu.Unlock()
				return
			}
			shardPages[i] = sourcePage{src: name, records: resp.Traces, next: resp.NextCursor}
		}(i, name)
	}
	wg.Wait()
	for _, p := range shardPages {
		if p.src != "" {
			pages = append(pages, p)
		}
	}

	var merged []taggedTrace
	for _, p := range pages {
		for _, rec := range p.records {
			merged = append(merged, taggedTrace{src: p.src, rec: rec})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if !merged[i].rec.Start.Equal(merged[j].rec.Start) {
			return merged[i].rec.Start.Before(merged[j].rec.Start)
		}
		if merged[i].src != merged[j].src {
			return merged[i].src < merged[j].src
		}
		return merged[i].rec.Seq < merged[j].rec.Seq
	})
	page := merged
	if len(page) > limit {
		page = page[:limit]
	}

	// Per-source resume point, exactly as the merged events endpoint
	// computes it: a source fully consumed advances to its own next
	// cursor; a source cut by the merge resumes at its last returned
	// record.
	included := map[string]int{}
	next := map[string]uint64{}
	for _, p := range pages {
		next[p.src] = cursorFor(p.src)
	}
	for _, tt := range page {
		included[tt.src]++
		if tt.rec.Seq > next[tt.src] {
			next[tt.src] = tt.rec.Seq
		}
	}
	for _, p := range pages {
		if included[p.src] == len(p.records) && p.next > next[p.src] {
			next[p.src] = p.next
		}
	}
	srcs := make([]string, 0, len(next))
	for s := range next {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	parts := make([]string, 0, len(srcs))
	for _, s := range srcs {
		parts = append(parts, fmt.Sprintf("%s:%d", s, next[s]))
	}

	records := make([]tracestore.Record, 0, len(page))
	for _, tt := range page {
		records = append(records, tt.rec)
	}
	out := ClusterTracesResponse{Traces: records, NextCursor: strings.Join(parts, ",")}
	if len(errs) > 0 {
		out.Partial = true
		out.Errors = errs
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraceGet implements the router's GET /v1/traces/{id}: the
// cross-tier waterfall. Every live shard (and the router's own store)
// is asked for its fragment of the id; all fragments found are grafted
// into one tree — the backend's spans carry the router's proxy span as
// their parent, so the assembly is pure concatenation plus a sort. 404
// means no store anywhere retained the id.
func (r *Router) handleTraceGet(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	var fragments []tracestore.Record
	if rec, ok := r.traces.Get(id); ok {
		fragments = append(fragments, rec)
	}
	errs := map[string]string{}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, name := range r.members.Alive() {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			status, body, err := r.call(req.Context(), http.MethodGet, name, "/v1/traces/"+url.PathEscape(id), nil)
			if err != nil {
				mu.Lock()
				errs[name] = err.Error()
				mu.Unlock()
				return
			}
			if status == http.StatusNotFound {
				return // that shard never saw (or sampled out) the trace
			}
			if status != http.StatusOK {
				mu.Lock()
				errs[name] = fmt.Sprintf("status %d", status)
				mu.Unlock()
				return
			}
			var tree service.TraceTreeResponse
			if err := json.Unmarshal(body, &tree); err != nil {
				mu.Lock()
				errs[name] = err.Error()
				mu.Unlock()
				return
			}
			mu.Lock()
			fragments = append(fragments, treeToRecord(tree))
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	for _, m := range r.members.Snapshot() {
		if !m.Healthy {
			errs[m.Name] = "backend down"
		}
	}
	if len(fragments) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown trace %q (expired, sampled out, or never seen)", id))
		return
	}
	// The root fragment anchors the response envelope: prefer the one
	// whose spans start earliest — normally the router's own, which
	// opened the trace at the edge.
	sort.SliceStable(fragments, func(i, j int) bool {
		return fragments[i].Start.Before(fragments[j].Start)
	})
	out := service.TraceTree(fragments[0])
	for _, frag := range fragments[1:] {
		out.AddRecord(frag)
		// The whole-request figures come from the fragment that saw the
		// most: a backend job outlives the router's 202 exchange.
		if frag.DurationMS > out.DurationMS {
			out.DurationMS = frag.DurationMS
		}
		if out.Error == "" {
			out.Error = frag.Error
		}
		if out.Graph == "" {
			out.Graph = frag.Graph
		}
		out.SpansDropped += frag.SpansDropped
	}
	if len(errs) > 0 {
		out.Partial = true
		out.Errors = errs
	}
	writeJSON(w, http.StatusOK, out)
}

// treeToRecord converts one backend's tree response back into a record
// so AddRecord can graft it. Span node stamps survive via the per-span
// Node field taking precedence in AddRecord when the record-level Node
// is empty — here every span keeps its own stamp.
func treeToRecord(tree service.TraceTreeResponse) tracestore.Record {
	rec := tracestore.Record{
		TraceID:      tree.TraceID,
		Route:        tree.Route,
		Graph:        tree.Graph,
		Start:        tree.Start,
		DurationMS:   tree.DurationMS,
		Error:        tree.Error,
		Kept:         tree.Kept,
		SpansDropped: tree.SpansDropped,
		Resources:    tree.Resources,
	}
	for _, sp := range tree.Spans {
		rec.Spans = append(rec.Spans, sp.Span)
	}
	if len(tree.Spans) > 0 {
		rec.Node = tree.Spans[0].Node
	}
	return rec
}
