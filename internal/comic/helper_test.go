package comic

import (
	"uicwelfare/internal/graph"
	"uicwelfare/internal/imm"
	"uicwelfare/internal/stats"
)

// importIMMRun returns the RR-set count of a plain IMM run, used by the
// Fig. 6 comparison test.
func importIMMRun(g *graph.Graph, k int, rng *stats.RNG) int {
	return imm.Run(g, k, imm.Options{}, rng).NumRRSets
}
