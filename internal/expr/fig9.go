package expr

import (
	"time"

	"uicwelfare/internal/bdhs"
	"uicwelfare/internal/core"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

// Fig9Row is one point of the propagation-vs-externality study (Fig. 9
// a-c): bundleGRD's welfare when every item's budget is pct% of the node
// count, against the no-budget BDHS benchmarks.
type Fig9Row struct {
	Network        string
	BudgetPct      int
	Welfare        float64
	StepBenchmark  float64
	ConcBenchmark  float64
	ReachedStepPct float64 // welfare as % of the step benchmark
}

// Fig9 reproduces Fig. 9(a-c) on one network: sweep the per-item budget
// as a percentage of n and report where bundleGRD's propagation-driven
// welfare crosses the BDHS externality-only benchmarks. The model is the
// paper's real 5-item parameter set; BDHS assigns the best virtual item
// (itemset) to every node with no budget.
func Fig9(network string, pcts []int, p Params) ([]Fig9Row, error) {
	p = p.withDefaults()
	spec, err := NetworkByName(network)
	if err != nil {
		return nil, err
	}
	g := spec.Generate(p.Scale, p.Seed)
	m := utility.RealParams()

	rng := stats.NewRNG(p.Seed)
	stepBench := bdhs.StepBenchmark(g, m, rng, 200)
	concBench := bdhs.ConcaveBenchmark(g.UniformProb(0.01), m, 0.01)

	if len(pcts) == 0 {
		pcts = []int{5, 10, 20, 35, 50, 75, 100}
	}
	var rows []Fig9Row
	for _, pct := range pcts {
		b := g.N() * pct / 100
		if b < 1 {
			b = 1
		}
		budgets := []int{b, b, b, b, b}
		prob := core.MustProblem(g, m, budgets)
		res := core.BundleGRD(prob, core.Options{Eps: p.Eps, Ell: p.Ell}, stats.NewRNG(p.Seed+uint64(pct)))
		est := uic.NewSimulator(g, m).EstimateWelfare(res.Alloc, stats.NewRNG(p.Seed+23), p.Runs)
		reached := 0.0
		if stepBench > 0 {
			reached = 100 * est.Mean / stepBench
		}
		rows = append(rows, Fig9Row{
			Network: spec.Name, BudgetPct: pct,
			Welfare: est.Mean, StepBenchmark: stepBench, ConcBenchmark: concBench,
			ReachedStepPct: reached,
		})
	}
	return rows, nil
}

// Fig9dRow is one point of the scalability study (Fig. 9d).
type Fig9dRow struct {
	NetworkPct int
	Nodes      int
	Variant    string // "wc" (1/indeg) or "p=0.01"
	Welfare    float64
	Millis     float64
}

// Fig9d reproduces the scalability test: grow the Orkut stand-in by BFS
// prefixes of 20%..100% of the nodes, run bundleGRD with a uniform
// budget of 50 per item under both edge-probability settings, and report
// welfare and running time.
func Fig9d(p Params) ([]Fig9dRow, error) {
	p = p.withDefaults()
	spec, _ := NetworkByName("orkut")
	full := spec.Generate(p.Scale, p.Seed)
	m := utility.RealParams()
	bscale := p.Scale
	if bscale > 1 {
		bscale = 1
	}
	budget := int(50 * bscale)
	if budget < 1 {
		budget = 1
	}
	var rows []Fig9dRow
	for _, pct := range []int{20, 40, 60, 80, 100} {
		want := full.N() * pct / 100
		sub, _ := graph.BFSPrefix(full, want)
		for _, variant := range []string{"wc", "p=0.01"} {
			g := sub
			if variant == "p=0.01" {
				g = sub.UniformProb(0.01)
			} else {
				g = sub.WeightedCascade()
			}
			budgets := []int{budget, budget, budget, budget, budget}
			prob := core.MustProblem(g, m, budgets)
			start := time.Now()
			res := core.BundleGRD(prob, core.Options{Eps: p.Eps, Ell: p.Ell}, stats.NewRNG(p.Seed+uint64(pct)))
			ms := float64(time.Since(start).Microseconds()) / 1000.0
			est := uic.NewSimulator(g, m).EstimateWelfare(res.Alloc, stats.NewRNG(p.Seed+29), p.Runs)
			rows = append(rows, Fig9dRow{
				NetworkPct: pct, Nodes: g.N(), Variant: variant,
				Welfare: est.Mean, Millis: ms,
			})
		}
	}
	return rows, nil
}
