package utility

import (
	"fmt"

	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
)

// PriceFunc is a set-valued price. The base model uses additive prices
// (§3.1); §5 of the paper observes that submodular prices (bundle
// discounts) keep the utility supermodular, so all results carry over.
type PriceFunc func(itemset.Set) float64

// NewModelWithPrice assembles a model whose price is an arbitrary set
// function with P(∅) = 0 and P(S) > 0 for non-empty S. The perItem slice
// still records the singleton prices P({i}) for components that need them
// (e.g. the GAP conversion); it must agree with the function.
func NewModelWithPrice(val Valuation, price PriceFunc, perItem []float64, noise []stats.Dist) (*Model, error) {
	k := val.NumItems()
	if len(perItem) != k || len(noise) != k {
		return nil, fmt.Errorf("utility: %d singleton prices / %d noise terms for %d items", len(perItem), len(noise), k)
	}
	if p := price(itemset.Empty); p != 0 {
		return nil, fmt.Errorf("utility: P(∅) = %v, want 0", p)
	}
	for i := 0; i < k; i++ {
		p := price(itemset.Single(i))
		if p <= 0 {
			return nil, fmt.Errorf("utility: P({%d}) = %v, want > 0", i, p)
		}
		if p != perItem[i] {
			return nil, fmt.Errorf("utility: singleton price mismatch for item %d: func %v vs slice %v", i, p, perItem[i])
		}
		if noise[i] == nil || noise[i].Mean() != 0 {
			return nil, fmt.Errorf("utility: noise of item %d must be zero-mean", i)
		}
	}
	m := &Model{Val: val, Prices: perItem, Noise: noise, priceFn: price}
	size := 1 << uint(k)
	m.detTable = make([]float64, size)
	for s := itemset.Set(1); int(s) < size; s++ {
		p := price(s)
		if p <= 0 {
			return nil, fmt.Errorf("utility: P(%v) = %v, want > 0", s, p)
		}
		m.detTable[s] = val.Value(s) - p
	}
	return m, nil
}

// VolumeDiscount builds a submodular bundle price: the additive price
// minus discount per unordered item pair in the bundle,
//
//	P(S) = Σ_{i∈S} base_i − d·C(|S|, 2),
//
// floored at minFrac times the additive price so bundles never become
// free. The pairwise rebate makes the marginal price of an item
// non-increasing in the bundle (submodular), and the floor preserves both
// positivity and (weak) submodularity for the discounts used in practice.
func VolumeDiscount(base []float64, d, minFrac float64) PriceFunc {
	return func(s itemset.Set) float64 {
		if s.IsEmpty() {
			return 0
		}
		sum := 0.0
		for _, i := range s.Items() {
			sum += base[i]
		}
		n := float64(s.Size())
		p := sum - d*n*(n-1)/2
		if floor := sum * minFrac; p < floor {
			p = floor
		}
		return p
	}
}

// IsSubmodularPrice exhaustively verifies submodularity of a price
// function over k items (tests/diagnostics; k small).
func IsSubmodularPrice(price PriceFunc, k int) bool {
	for a := itemset.Set(0); a < 1<<uint(k); a++ {
		for x := 0; x < k; x++ {
			if a.Has(x) {
				continue
			}
			for y := x + 1; y < k; y++ {
				if a.Has(y) {
					continue
				}
				ax, ay := a.Add(x), a.Add(y)
				if price(ax.Add(y))-price(ay) > price(ax)-price(a)+1e-9 {
					return false
				}
			}
		}
	}
	return true
}
