package utility

import (
	"math"
	"testing"

	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
)

func TestVolumeDiscountBasics(t *testing.T) {
	base := []float64{10, 10, 10}
	price := VolumeDiscount(base, 2, 0.5)
	if price(itemset.Empty) != 0 {
		t.Error("P(∅) != 0")
	}
	if price(itemset.New(0)) != 10 {
		t.Errorf("singleton price %v", price(itemset.New(0)))
	}
	// pair: 20 - 2·1 = 18; triple: 30 - 2·3 = 24
	if price(itemset.New(0, 1)) != 18 {
		t.Errorf("pair price %v", price(itemset.New(0, 1)))
	}
	if price(itemset.New(0, 1, 2)) != 24 {
		t.Errorf("triple price %v", price(itemset.New(0, 1, 2)))
	}
}

func TestVolumeDiscountFloor(t *testing.T) {
	base := []float64{1, 1, 1, 1, 1}
	price := VolumeDiscount(base, 10, 0.3)
	// undiscounted would go deeply negative; floor = 0.3 · Σbase
	p := price(itemset.All(5))
	if math.Abs(p-1.5) > 1e-12 {
		t.Errorf("floored price %v, want 1.5", p)
	}
}

func TestVolumeDiscountIsSubmodular(t *testing.T) {
	price := VolumeDiscount([]float64{5, 7, 9, 11}, 0.5, 0.2)
	if !IsSubmodularPrice(price, 4) {
		t.Error("volume discount should be submodular")
	}
	// additive price is trivially submodular too
	add := VolumeDiscount([]float64{5, 7, 9, 11}, 0, 1)
	if !IsSubmodularPrice(add, 4) {
		t.Error("additive price should be (weakly) submodular")
	}
}

func TestIsSubmodularPriceDetectsViolation(t *testing.T) {
	// superadditive price (bundle premium) is not submodular
	premium := func(s itemset.Set) float64 {
		n := float64(s.Size())
		return 5*n + n*n
	}
	if IsSubmodularPrice(premium, 3) {
		t.Error("superadditive price accepted as submodular")
	}
}

func TestNewModelWithPriceValidation(t *testing.T) {
	val, _ := NewTableValuation(2, []float64{0, 5, 5, 20})
	noise := []stats.Dist{stats.Noise(1), stats.Noise(1)}
	base := []float64{3, 3}
	good := VolumeDiscount(base, 1, 0.2)
	if _, err := NewModelWithPrice(val, good, base, noise); err != nil {
		t.Errorf("valid discounted model rejected: %v", err)
	}
	// mismatched singleton prices
	if _, err := NewModelWithPrice(val, good, []float64{4, 3}, noise); err == nil {
		t.Error("singleton price mismatch accepted")
	}
	// non-positive bundle price
	bad := func(s itemset.Set) float64 {
		if s.Size() == 2 {
			return -1
		}
		if s.IsEmpty() {
			return 0
		}
		return 3
	}
	if _, err := NewModelWithPrice(val, bad, base, noise); err == nil {
		t.Error("negative bundle price accepted")
	}
	// biased noise
	if _, err := NewModelWithPrice(val, good, base,
		[]stats.Dist{stats.Gaussian{Mu: 1, Sigma: 1}, stats.Noise(1)}); err == nil {
		t.Error("biased noise accepted")
	}
}

func TestSubmodularPriceKeepsUtilitySupermodular(t *testing.T) {
	// §5: supermodular V minus submodular P is supermodular; verify on
	// the level-wise random valuations
	rng := stats.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		m8 := Config8(4, rng)
		base := m8.Prices
		price := VolumeDiscount(base, 0.3, 0.3)
		dm, err := NewModelWithPrice(m8.Val, price, base, m8.Noise)
		if err != nil {
			t.Fatal(err)
		}
		// check supermodularity of the deterministic utility directly
		util := dm.UtilityTable([]float64{0, 0, 0, 0}, nil)
		tv, _ := NewTableValuation(4, normalize(util))
		if !IsSupermodular(tv) {
			t.Fatalf("trial %d: discounted utility lost supermodularity", trial)
		}
	}
}

// normalize shifts a utility table so the empty set maps to 0 (it already
// does; defensive copy for the valuation wrapper).
func normalize(util []float64) []float64 {
	out := make([]float64, len(util))
	copy(out, util)
	return out
}

func TestDiscountFavorsBundling(t *testing.T) {
	// with a discount, the bundle utility strictly improves while
	// singleton utilities stay put
	val, _ := NewTableValuation(2, []float64{0, 5, 5, 12})
	noise := []stats.Dist{stats.Noise(1), stats.Noise(1)}
	base := []float64{4, 4}
	flat := MustModel(val, base, noise)
	disc, err := NewModelWithPrice(val, VolumeDiscount(base, 2, 0.2), base, noise)
	if err != nil {
		t.Fatal(err)
	}
	both := itemset.New(0, 1)
	if disc.DetUtility(both) <= flat.DetUtility(both) {
		t.Errorf("discount did not raise bundle utility: %v vs %v",
			disc.DetUtility(both), flat.DetUtility(both))
	}
	if disc.DetUtility(itemset.New(0)) != flat.DetUtility(itemset.New(0)) {
		t.Error("singleton utility changed under pair discount")
	}
	if disc.Price(both) != 6 {
		t.Errorf("discounted pair price %v, want 6", disc.Price(both))
	}
}
