// Package imm implements the IMM approximation algorithm of Tang et al.
// (SIGMOD'15) with the sample-regeneration fix of Chen (2018), plus the
// earlier TIM+ algorithm used by the Com-IC baselines. Both reduce
// influence maximization to max-cover over reverse-reachable sets; they
// differ only in how many RR sets they decide to draw.
package imm

import (
	"math"

	"uicwelfare/internal/stats"
)

// EpsPrime returns ε' = sqrt(2)·ε, the phase-1 accuracy parameter of IMM.
func EpsPrime(eps float64) float64 { return math.Sqrt2 * eps }

// LambdaPrime evaluates Eq. (7) of the paper: the phase-1 sampling bound
//
//	λ'_k = (2 + 2/3·ε')(log C(n,k) + ℓ'·log n + log log2 n)·n / ε'^2
//
// with natural logarithms. ellPrime is the effective confidence exponent
// (for plain IMM, ℓ + log2/log n; PRIMA adds log|b|/log n on top).
func LambdaPrime(n, k int, eps, ellPrime float64) float64 {
	epsp := EpsPrime(eps)
	logBinom := stats.LogNChooseK(n, k)
	loglog := math.Log(math.Log2(float64(n)))
	num := (2 + 2.0/3.0*epsp) * (logBinom + ellPrime*math.Log(float64(n)) + loglog) * float64(n)
	return num / (epsp * epsp)
}

// LambdaStar evaluates Eq. (8) of the paper: the phase-2 sampling bound
//
//	λ*_k = 2n·((1-1/e)·α + β_k)^2 · ε^-2
//	α    = sqrt(ℓ'·log n + log 2)
//	β_k  = sqrt((1-1/e)·(log C(n,k) + ℓ'·log n + log 2))
func LambdaStar(n, k int, eps, ellPrime float64) float64 {
	oneMinusInvE := 1 - 1/math.E
	alpha := math.Sqrt(ellPrime*math.Log(float64(n)) + math.Ln2)
	beta := math.Sqrt(oneMinusInvE * (stats.LogNChooseK(n, k) + ellPrime*math.Log(float64(n)) + math.Ln2))
	s := oneMinusInvE*alpha + beta
	return 2 * float64(n) * s * s / (eps * eps)
}

// EllPlusLog2 returns ℓ + log2/log n, the standard IMM adjustment that
// folds the union bound over its two phases into the failure probability.
func EllPlusLog2(ell float64, n int) float64 {
	return ell + math.Ln2/math.Log(float64(n))
}
