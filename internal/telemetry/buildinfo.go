package telemetry

import (
	"runtime/debug"
	"sync"
)

var (
	buildInfoOnce sync.Once
	buildVersion  string
	buildCommit   string
)

// BuildInfo returns the binary's module version and VCS revision as
// embedded by the Go toolchain, with "unknown" standing in for whatever
// the build did not stamp (plain `go build` outside a checkout, test
// binaries, and so on).
func BuildInfo() (version, commit string) {
	buildInfoOnce.Do(func() {
		buildVersion, buildCommit = "unknown", "unknown"
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if v := bi.Main.Version; v != "" {
			buildVersion = v
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				buildCommit = s.Value
			}
		}
	})
	return buildVersion, buildCommit
}

// BuildInfoGauge renders BuildInfo in the Prometheus build-info idiom:
// a constant-1 gauge whose labels carry the identity.
func BuildInfoGauge() Gauge {
	version, commit := BuildInfo()
	return Gauge{
		Name:  "welmax_build_info",
		Value: 1,
		Labels: []Label{
			{Name: "version", Value: version},
			{Name: "commit", Value: commit},
		},
	}
}
