package cluster_test

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"uicwelfare/internal/cluster"
	"uicwelfare/internal/journal"
	"uicwelfare/internal/service"
)

// eventsResp mirrors cluster.ClusterEventsResponse for decoding.
type eventsResp struct {
	Events     []journal.Event   `json:"events"`
	NextCursor string            `json:"next_cursor"`
	Partial    bool              `json:"partial"`
	Errors     map[string]string `json:"errors"`
}

// eventKey identifies one journal event within one source journal —
// Seq alone is only unique per recorder, so the node stamp (every
// event in these tests carries one) disambiguates across shards.
func eventKey(e journal.Event) string {
	return fmt.Sprintf("%s/%d/%s/%s", e.Node, e.Seq, e.Type, e.TS.Format(time.RFC3339Nano))
}

// TestClusterEventsMergedAcrossShards records interleaved events into
// two shards' journals and checks the router's GET /v1/events returns
// one time-ordered merge with a composite per-source cursor, and that
// walking that cursor with a small page size reproduces the same
// history without duplicates or gaps.
func TestClusterEventsMergedAcrossShards(t *testing.T) {
	b0 := startBackendAt(t, "b0", "127.0.0.1:0", service.Options{Workers: 1})
	b1 := startBackendAt(t, "b1", "127.0.0.1:0", service.Options{Workers: 1})
	rt, cl := newCluster(t, []*backend{b0, b1}, cluster.Options{})
	defer rt.Close()
	rt.Sync(syncCtx())

	// Interleave records across the shards; each sleep keeps the stamps
	// strictly increasing so the expected merge order is unambiguous.
	shards := []*backend{b0, b1}
	const perShard = 3
	want := map[string]bool{}
	for i := 0; i < 2*perShard; i++ {
		b := shards[i%2]
		e := journal.Event{Type: journal.CacheEvict, Graph: fmt.Sprintf("g%d", i), Key: fmt.Sprintf("g%d|k", i)}
		b.svc.Journal().Record(e)
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 2*perShard; i++ {
		want[fmt.Sprintf("g%d", i)] = false
	}

	var resp eventsResp
	cl.doJSON("GET", "/v1/events?limit=1000", nil, &resp, http.StatusOK)
	if resp.Partial {
		t.Fatalf("partial merge with all shards up: %v", resp.Errors)
	}
	for i := 1; i < len(resp.Events); i++ {
		if resp.Events[i].TS.Before(resp.Events[i-1].TS) {
			t.Fatalf("merge not time-ordered at %d: %v after %v",
				i, resp.Events[i].TS, resp.Events[i-1].TS)
		}
	}
	for _, e := range resp.Events {
		if _, ok := want[e.Graph]; ok && e.Type == journal.CacheEvict {
			want[e.Graph] = true
		}
	}
	for g, seen := range want {
		if !seen {
			t.Errorf("recorded event for %s missing from merged page", g)
		}
	}
	// The router's own journal contributes the member_up transitions
	// from the Sync above, so all three sources appear in the cursor.
	for _, src := range []string{"router:", "b0:", "b1:"} {
		if !strings.Contains(resp.NextCursor, src) {
			t.Errorf("next_cursor %q missing source %q", resp.NextCursor, src)
		}
	}

	// Paged walk: same history, two events at a time, no duplicates.
	seen := map[string]bool{}
	var walked []journal.Event
	cursor := ""
	for i := 0; i < 50; i++ {
		path := "/v1/events?limit=2"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		var page eventsResp
		cl.doJSON("GET", path, nil, &page, http.StatusOK)
		if len(page.Events) == 0 {
			break
		}
		for _, e := range page.Events {
			if k := eventKey(e); seen[k] {
				t.Fatalf("event %s returned twice across pages", k)
			} else {
				seen[k] = true
			}
			walked = append(walked, e)
		}
		cursor = page.NextCursor
	}
	if len(walked) != len(resp.Events) {
		t.Fatalf("paged walk returned %d events, single page returned %d", len(walked), len(resp.Events))
	}
	for i := range walked {
		if eventKey(walked[i]) != eventKey(resp.Events[i]) {
			t.Fatalf("paged walk diverges at %d: %s vs %s",
				i, eventKey(walked[i]), eventKey(resp.Events[i]))
		}
	}
}

// TestClusterEventsDeadShard kills one shard and checks the merged
// view stays readable: the live shard's and the router's own events
// come back, the response is marked partial, and the dead shard is
// named in errors rather than silently omitted.
func TestClusterEventsDeadShard(t *testing.T) {
	b0 := startBackendAt(t, "b0", "127.0.0.1:0", service.Options{Workers: 1})
	b1 := startBackendAt(t, "b1", "127.0.0.1:0", service.Options{Workers: 1})
	rt, cl := newCluster(t, []*backend{b0, b1}, cluster.Options{})
	defer rt.Close()
	rt.Sync(syncCtx())

	b0.svc.Journal().Record(journal.Event{Type: journal.CacheEvict, Graph: "galive", Key: "galive|k"})
	b1.svc.Journal().Record(journal.Event{Type: journal.CacheEvict, Graph: "gdead", Key: "gdead|k"})

	b1.kill()
	rt.Sync(syncCtx()) // prober marks b1 down, journals member_down

	var resp eventsResp
	cl.doJSON("GET", "/v1/events?limit=1000", nil, &resp, http.StatusOK)
	if !resp.Partial {
		t.Fatal("response not marked partial with a dead shard")
	}
	if _, ok := resp.Errors["b1"]; !ok {
		t.Fatalf("dead shard b1 not reported in errors: %v", resp.Errors)
	}
	var sawAlive, sawDead, sawDown bool
	for _, e := range resp.Events {
		switch {
		case e.Graph == "galive":
			sawAlive = true
		case e.Graph == "gdead":
			sawDead = true
		case e.Type == journal.MemberDown && e.Node == "b1":
			sawDown = true
		}
	}
	if !sawAlive {
		t.Error("live shard's event missing from merged page")
	}
	if sawDead {
		t.Error("dead shard's event returned after its death")
	}
	if !sawDown {
		t.Error("router journal missing member_down for the killed shard")
	}
}

// placementResp mirrors cluster.PlacementResponse for decoding.
type placementResp struct {
	GraphID   string `json:"graph_id"`
	Cataloged bool   `json:"cataloged"`
	Owner     string `json:"owner"`
	HRWOwner  string `json:"hrw_owner"`
	Nodes     []struct {
		Node     string `json:"node"`
		Rank     int    `json:"rank"`
		Alive    bool   `json:"alive"`
		Owner    bool   `json:"owner"`
		Resident bool   `json:"resident"`
	} `json:"nodes"`
	History []journal.Event `json:"history"`
}

// TestPlacementExplainsHRW registers a spread of graphs and checks the
// placement endpoint's explanation against the HRW functions directly:
// the reported rank order IS cluster.Rank, the owner IS cluster.Owner
// over the live set, and the owning node is flagged in the rank list.
func TestPlacementExplainsHRW(t *testing.T) {
	b0 := startBackendAt(t, "b0", "127.0.0.1:0", service.Options{Workers: 1})
	b1 := startBackendAt(t, "b1", "127.0.0.1:0", service.Options{Workers: 1})
	b2 := startBackendAt(t, "b2", "127.0.0.1:0", service.Options{Workers: 1})
	rt, cl := newCluster(t, []*backend{b0, b1, b2}, cluster.Options{})
	defer rt.Close()
	rt.Sync(syncCtx())
	names := []string{"b0", "b1", "b2"}

	owners := map[string]bool{}
	for n := 4; n < 12; n++ {
		info := cl.registerLine(n)

		var pl placementResp
		cl.doJSON("GET", "/v1/cluster/placement/"+info.ID, nil, &pl, http.StatusOK)
		if !pl.Cataloged {
			t.Fatalf("graph %s not cataloged", info.ID)
		}
		wantOwner, ok := cluster.Owner(names, info.ID)
		if !ok {
			t.Fatal("no HRW owner over a live topology")
		}
		if pl.HRWOwner != wantOwner {
			t.Errorf("graph %s: hrw_owner %s, want %s", info.ID, pl.HRWOwner, wantOwner)
		}
		if pl.Owner != wantOwner {
			t.Errorf("graph %s: cataloged owner %s, want HRW owner %s (all shards up)", info.ID, pl.Owner, wantOwner)
		}
		owners[pl.Owner] = true

		wantRank := cluster.Rank(names, info.ID)
		if len(pl.Nodes) != len(wantRank) {
			t.Fatalf("graph %s: %d placement nodes, want %d", info.ID, len(pl.Nodes), len(wantRank))
		}
		for i, node := range pl.Nodes {
			if node.Node != wantRank[i] || node.Rank != i {
				t.Errorf("graph %s: rank %d is %s(%d), want %s", info.ID, i, node.Node, node.Rank, wantRank[i])
			}
			if node.Owner != (node.Node == pl.Owner) {
				t.Errorf("graph %s: owner flag on %s disagrees with owner %s", info.ID, node.Node, pl.Owner)
			}
			if !node.Alive {
				t.Errorf("graph %s: node %s reported dead in a live topology", info.ID, node.Node)
			}
		}
		if top := pl.Nodes[0].Node; top != pl.HRWOwner {
			t.Errorf("graph %s: rank 0 is %s but hrw_owner is %s", info.ID, top, pl.HRWOwner)
		}
	}
	// Sanity for the property: HRW should have spread 8 graphs over >1 node.
	if len(owners) < 2 {
		t.Errorf("HRW placed every graph on one node: %v", owners)
	}
}
