package itemset

import (
	"testing"
	"testing/quick"
)

func TestNewAndHas(t *testing.T) {
	s := New(0, 2, 3)
	for i := 0; i < 8; i++ {
		want := i == 0 || i == 2 || i == 3
		if s.Has(i) != want {
			t.Errorf("Has(%d) = %v, want %v", i, s.Has(i), want)
		}
	}
}

func TestAll(t *testing.T) {
	cases := []struct {
		k    int
		want Set
	}{
		{0, 0}, {1, 1}, {2, 3}, {3, 7}, {5, 31}, {32, Set(^uint32(0))},
	}
	for _, c := range cases {
		if got := All(c.k); got != c.want {
			t.Errorf("All(%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestAllNegative(t *testing.T) {
	if All(-1) != Empty {
		t.Errorf("All(-1) should be empty")
	}
}

func TestAddRemove(t *testing.T) {
	s := Empty.Add(3).Add(5)
	if !s.Has(3) || !s.Has(5) || s.Size() != 2 {
		t.Fatalf("add failed: %v", s)
	}
	s = s.Remove(3)
	if s.Has(3) || !s.Has(5) {
		t.Fatalf("remove failed: %v", s)
	}
	// Removing an absent element is a no-op.
	if s.Remove(7) != s {
		t.Errorf("removing absent element changed set")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(0, 1, 2)
	b := New(2, 3)
	if got := a.Union(b); got != New(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != New(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got != New(0, 1) {
		t.Errorf("Minus = %v", got)
	}
}

func TestSubsetRelations(t *testing.T) {
	a := New(1, 2)
	b := New(0, 1, 2)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Errorf("SubsetOf wrong")
	}
	if !a.ProperSubsetOf(b) {
		t.Errorf("ProperSubsetOf wrong")
	}
	if a.ProperSubsetOf(a) {
		t.Errorf("a is not a proper subset of itself")
	}
	if !a.SubsetOf(a) {
		t.Errorf("a ⊆ a must hold")
	}
	if !Empty.SubsetOf(a) {
		t.Errorf("∅ ⊆ a must hold")
	}
}

func TestOverlaps(t *testing.T) {
	if !New(1, 2).Overlaps(New(2, 3)) {
		t.Errorf("expected overlap")
	}
	if New(1).Overlaps(New(2)) {
		t.Errorf("unexpected overlap")
	}
	if Empty.Overlaps(New(1)) {
		t.Errorf("empty set overlaps nothing")
	}
}

func TestItemsOrder(t *testing.T) {
	s := New(7, 1, 4)
	got := s.Items()
	want := []int{1, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("Items() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items() = %v, want %v", got, want)
		}
	}
}

func TestMinMax(t *testing.T) {
	s := New(3, 9, 14)
	if s.Min() != 3 || s.Max() != 14 {
		t.Errorf("Min/Max = %d/%d", s.Min(), s.Max())
	}
	if Empty.Min() != -1 || Empty.Max() != -1 {
		t.Errorf("empty Min/Max should be -1")
	}
}

func TestString(t *testing.T) {
	if got := New(0, 2).String(); got != "{0,2}" {
		t.Errorf("String = %q", got)
	}
	if got := Empty.String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestSubsetsEnumeratesAll(t *testing.T) {
	s := New(0, 2, 5)
	seen := map[Set]bool{}
	s.Subsets(func(sub Set) bool {
		if !sub.SubsetOf(s) {
			t.Errorf("enumerated non-subset %v", sub)
		}
		if seen[sub] {
			t.Errorf("duplicate subset %v", sub)
		}
		seen[sub] = true
		return true
	})
	if len(seen) != 8 {
		t.Errorf("enumerated %d subsets, want 8", len(seen))
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	count := 0
	New(0, 1, 2).Subsets(func(Set) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestSupersetsWithin(t *testing.T) {
	base := New(1)
	within := New(0, 1, 2)
	seen := map[Set]bool{}
	SupersetsWithin(base, within, func(s Set) bool {
		if !base.SubsetOf(s) || !s.SubsetOf(within) {
			t.Errorf("bad superset %v", s)
		}
		seen[s] = true
		return true
	})
	if len(seen) != 4 {
		t.Errorf("got %d supersets, want 4", len(seen))
	}
}

func TestSortedIsNumericOrder(t *testing.T) {
	in := []Set{New(2), New(0), New(0, 1), New(1)}
	out := Sorted(in)
	want := []Set{New(0), New(1), New(0, 1), New(2)}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", out, want)
		}
	}
	// Input must be left untouched.
	if in[0] != New(2) {
		t.Errorf("Sorted mutated its input")
	}
}

// Property: size of union is |a|+|b|-|a∩b|.
func TestQuickUnionSize(t *testing.T) {
	f := func(a, b uint32) bool {
		sa, sb := Set(a), Set(b)
		return sa.Union(sb).Size() == sa.Size()+sb.Size()-sa.Intersect(sb).Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: minus then union with the removed part restores any superset
// relation: (a\b) ∪ (a∩b) == a.
func TestQuickMinusPartition(t *testing.T) {
	f := func(a, b uint32) bool {
		sa, sb := Set(a), Set(b)
		return sa.Minus(sb).Union(sa.Intersect(sb)) == sa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Items round-trips through New.
func TestQuickItemsRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		s := Set(a)
		return New(s.Items()...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: number of subsets is 2^|s| (restrict to small sets).
func TestQuickSubsetCount(t *testing.T) {
	f := func(a uint16) bool {
		s := Set(a & 0x3ff) // at most 10 items
		count := 0
		s.Subsets(func(Set) bool { count++; return true })
		return count == 1<<uint(s.Size())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
