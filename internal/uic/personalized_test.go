package uic

import (
	"math"
	"testing"

	"uicwelfare/internal/diffusion"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/utility"
)

func TestPersonalizedZeroVarianceMatchesShared(t *testing.T) {
	// with zero-variance noise, personalized and population noise agree
	val, _ := utility.NewTableValuation(2, []float64{0, 3, 1, 6})
	m := utility.MustModel(val, []float64{1, 2},
		[]stats.Dist{stats.PointMass{}, stats.PointMass{}})
	rng := stats.NewRNG(1)
	g := graph.ErdosRenyi(50, 200, rng).WeightedCascade()
	alloc := NewAllocation(2)
	for s := 0; s < 5; s++ {
		alloc.Assign(graph.NodeID(s), 0)
		alloc.Assign(graph.NodeID(s), 1)
	}
	shared := NewSimulator(g, m).EstimateWelfare(alloc, stats.NewRNG(2), 20000)
	personal := NewPersonalizedSim(g, m).EstimateWelfare(alloc, stats.NewRNG(3), 20000)
	if math.Abs(shared.Mean-personal.Mean) > 3*(shared.StdErr+personal.StdErr)+1e-9 {
		t.Errorf("zero-variance personalized %v != shared %v", personal.Mean, shared.Mean)
	}
}

func TestPersonalizedNoiseChangesOutcomes(t *testing.T) {
	// population noise makes all-or-nothing worlds; personal noise blends
	// them. For a borderline item (det utility 0) seeded at one isolated
	// node, both give 50% adoption, but on a p=1 line the *joint*
	// adoption pattern differs: shared noise adopts everywhere or
	// nowhere, personal noise half the nodes.
	val, _ := utility.NewTableValuation(1, []float64{0, 1})
	m := utility.MustModel(val, []float64{1}, []stats.Dist{stats.Noise(1)})
	g := graph.Line(12, 1)
	alloc := NewAllocation(1)
	alloc.Assign(0, 0)

	// shared: welfare per run is either 0 or the full-line sum
	shared := NewSimulator(g, m)
	rng := stats.NewRNG(4)
	sawIntermediate := false
	for i := 0; i < 300; i++ {
		shared.RunOnce(alloc, rng)
		adopters := 0
		for v := graph.NodeID(0); v < 12; v++ {
			if !shared.Adopted(v).IsEmpty() {
				adopters++
			}
		}
		if adopters != 0 && adopters != 12 {
			sawIntermediate = true
		}
	}
	if sawIntermediate {
		t.Error("shared noise must adopt all-or-nothing on a p=1 line")
	}

	// personalized: intermediate adoption counts must appear
	personal := NewPersonalizedSim(g, m)
	sawIntermediate = false
	for i := 0; i < 300; i++ {
		personal.RunOnce(alloc, rng)
		adopters := 0
		for v := graph.NodeID(0); v < 12; v++ {
			if !personal.Adopted(v).IsEmpty() {
				adopters++
			}
		}
		if adopters > 0 && adopters < 12 {
			sawIntermediate = true
		}
	}
	if !sawIntermediate {
		t.Error("personalized noise never produced partial adoption")
	}
}

func TestPersonalizedBreaksReachabilityLemma(t *testing.T) {
	// the paper's §5 caveat: with personalized noise Lemma 3 fails — a
	// node reachable from an adopter can refuse the item.
	val, _ := utility.NewTableValuation(1, []float64{0, 1})
	m := utility.MustModel(val, []float64{1}, []stats.Dist{stats.Noise(1)})
	g := graph.Line(6, 1)
	alloc := NewAllocation(1)
	alloc.Assign(0, 0)
	personal := NewPersonalizedSim(g, m)
	rng := stats.NewRNG(5)
	violated := false
	for i := 0; i < 500 && !violated; i++ {
		personal.RunOnce(alloc, rng)
		// all edges are live (p=1): if node 0 adopted but some later node
		// did not, reachability is violated
		if !personal.Adopted(0).IsEmpty() {
			for v := graph.NodeID(1); v < 6; v++ {
				if personal.Adopted(v).IsEmpty() {
					violated = true
					break
				}
			}
		}
	}
	if !violated {
		t.Error("personalized noise never violated reachability; Lemma 3 should fail here")
	}
}

func TestPersonalizedLTMode(t *testing.T) {
	val, _ := utility.NewTableValuation(1, []float64{0, 1})
	m := utility.MustModel(val, []float64{1e-9}, []stats.Dist{stats.PointMass{}})
	g := graph.Line(5, 1)
	sim := NewPersonalizedSim(g, m)
	sim.Cascade = graph.CascadeLT
	alloc := NewAllocation(1)
	alloc.Assign(0, 0)
	w := sim.EstimateWelfare(alloc, stats.NewRNG(6), 50).Mean
	if math.Abs(w-5) > 1e-6 {
		t.Errorf("personalized LT welfare %v, want 5 on p=1 line", w)
	}
}

func TestPersonalizedStateIsolationAcrossRuns(t *testing.T) {
	m := utility.Config3()
	g := graph.Line(3, 1)
	sim := NewPersonalizedSim(g, m)
	rng := stats.NewRNG(7)
	alloc := NewAllocation(2)
	alloc.Assign(0, 0)
	sim.EstimateWelfare(alloc, rng, 200)
	if w := sim.EstimateWelfare(NewAllocation(2), rng, 200).Mean; w != 0 {
		t.Errorf("state leaked across runs: %v", w)
	}
}

func TestOnAdoptTraceFigure2(t *testing.T) {
	g := figure2Graph()
	m := figure2Model()
	sim := NewSimulator(g, m)
	type event struct {
		round int
		v     graph.NodeID
		set   itemset.Set
	}
	var events []event
	sim.OnAdopt = func(round int, v graph.NodeID, set itemset.Set) {
		events = append(events, event{round, v, set})
	}
	world := diffusion.NewLiveEdgeWorld(g, func(u, v graph.NodeID) bool {
		return !(u == 0 && v == 2) // the figure's world: (v1,v3) blocked
	})
	alloc := NewAllocation(2)
	alloc.Assign(0, 0)
	alloc.Assign(2, 1)
	sim.RunInWorld(alloc, world, []float64{0, 0})

	want := []event{
		{1, 0, itemset.New(0)},    // v1 adopts i1 at seeding
		{2, 1, itemset.New(0)},    // v2 adopts i1 at t=2
		{3, 2, itemset.New(0, 1)}, // v3 adopts the bundle at t=3
	}
	if len(events) != len(want) {
		t.Fatalf("trace %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, events[i], want[i])
		}
	}
}
