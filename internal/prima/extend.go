package prima

import (
	"context"
	"errors"
	"fmt"
	"math"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/imm"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
)

// ErrNotExtendable marks a sketch that cannot grow in place: degenerate
// (all-nodes or empty) sketches carry no collection to append to, and a
// request loosening ε past the build's would need guarantees the
// existing samples cannot give. Callers fall back to a cold build.
var ErrNotExtendable = errors.New("prima: sketch not extendable")

// ExtendSketchCtx grows a resident sketch — built for (oldBudgets,
// oldOpts) — into one serving (newBudgets, newOpts), by appending RR
// sets instead of rebuilding from scratch. It requires newOpts.Eps <=
// oldOpts.Eps (tightening is growth; loosening would discard samples)
// and a non-degenerate sketch on g.
//
// Sizing: the final collection of a PRIMA build holds θ = λ*(n, b_max,
// ε, ℓ')/LB sets, where LB is the adaptive phase's lower bound on
// OPT_{b_max}. LB is a property of (graph, b_max) alone, so for the top
// budget the new requirement is exactly θ_old · λ*_new/λ*_old — the LB
// cancels. Smaller budgets' requirements were subsumed by the max at
// build time and scale the same way. Appended sets are i.i.d. draws
// from the same RR distribution, so the extended collection is
// distributionally identical to a cold final-phase collection of its
// size.
//
// The original sketch is never mutated: growth happens on a clone, so
// concurrent readers of the resident sketch (the sketch-cache contract)
// are undisturbed. When no growth is needed the returned sketch shares
// the original's collection read-only.
func ExtendSketchCtx(ctx context.Context, g *graph.Graph, sk *Sketch, oldBudgets []int, oldOpts Options, newBudgets []int, newOpts Options, rng *stats.RNG) (*Sketch, error) {
	oldOpts, newOpts = oldOpts.withDefaults(), newOpts.withDefaults()
	if sk == nil || sk.Col == nil || sk.Col.Len() == 0 {
		return nil, ErrNotExtendable
	}
	n := g.N()
	if sk.Col.N() != n {
		return nil, fmt.Errorf("prima: sketch built on a %d-node graph, extending on %d nodes", sk.Col.N(), n)
	}
	if newOpts.Eps > oldOpts.Eps {
		return nil, fmt.Errorf("%w: eps loosened from %g to %g", ErrNotExtendable, oldOpts.Eps, newOpts.Eps)
	}
	obs := CanonicalBudgets(oldBudgets, n)
	bs := CanonicalBudgets(newBudgets, n)
	if len(obs) == 0 || len(bs) == 0 {
		return nil, fmt.Errorf("%w: empty budget vector", ErrNotExtendable)
	}
	if bs[0] >= n {
		return nil, fmt.Errorf("%w: top budget %d covers the whole graph", ErrNotExtendable, bs[0])
	}

	logn := math.Log(float64(n))
	ellPrimeOld := oldOpts.Ell + math.Ln2/logn + math.Log(float64(len(obs)))/logn
	ellPrimeNew := newOpts.Ell + math.Ln2/logn + math.Log(float64(len(bs)))/logn
	lamOld := imm.LambdaStar(n, obs[0], oldOpts.Eps, ellPrimeOld)
	lamNew := imm.LambdaStar(n, bs[0], newOpts.Eps, ellPrimeNew)

	maxBudget := bs[0]
	if sk.MaxBudget > maxBudget {
		maxBudget = sk.MaxBudget
	}
	thetaOld := int64(sk.Col.Len())
	thetaNew := thetaOld
	if lamNew > lamOld {
		thetaNew = int64(math.Ceil(float64(thetaOld) * lamNew / lamOld))
	}
	if thetaNew <= thetaOld {
		// Already large enough: share the collection read-only under the
		// new budget ceiling (NodeSelection only reads).
		return &Sketch{Col: sk.Col, MaxBudget: maxBudget, Phase1: sk.Phase1}, nil
	}

	col := sk.Col.Clone()
	smp := col.Sampler()
	smp.Cascade = newOpts.Cascade
	smp.NodeCoin = newOpts.NodeCoin
	err := col.GrowParallelCtx(ctx, thetaNew, rng, newOpts.Workers, func(done, total int64) {
		if newOpts.Progress != nil {
			newOpts.Progress(progress.Event{Stage: progress.StageSketch, Round: 1, Done: int(done), Total: int(total)})
		}
	})
	if err != nil {
		return nil, err
	}
	return &Sketch{Col: col, MaxBudget: maxBudget, Phase1: sk.Phase1}, nil
}
