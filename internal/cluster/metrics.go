package cluster

import (
	"encoding/json"
	"net/http"

	"uicwelfare/internal/telemetry"
)

// handleMetrics implements the router's GET /v1/metrics: the cluster's
// merged latency histograms plus every backend's gauges. Histograms are
// fetched from each live shard in JSON form and element-wise summed
// with the router's own (all histograms share the fixed bucket bounds),
// so `welmax_http_request_duration_seconds{route="POST /v1/allocate"}`
// is one series covering the whole cluster. Gauges are point-in-time
// per shard and cannot be meaningfully summed, so each is relayed with
// a node label identifying the backend it came from. Unreachable
// backends contribute a welmax_backend_up{node} of 0 and nothing else —
// a scrape never fails because a shard is down.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	groups := [][]telemetry.HistSnapshot{r.metrics.Snapshot()}
	gauges := []telemetry.Gauge{}
	errs := map[string]string{}
	for _, res := range r.fanout(req.Context(), http.MethodGet, "/v1/metrics?format=json") {
		if res.err != nil {
			errs[res.backend] = res.err.Error()
			gauges = append(gauges, backendUp(res.backend, 0))
			continue
		}
		var export telemetry.Export
		if err := json.Unmarshal(res.body, &export); err != nil {
			errs[res.backend] = err.Error()
			gauges = append(gauges, backendUp(res.backend, 0))
			continue
		}
		groups = append(groups, export.Histograms)
		gauges = append(gauges, backendUp(res.backend, 1))
		for _, g := range export.Gauges {
			g.Labels = append([]telemetry.Label{{Name: "node", Value: res.backend}}, g.Labels...)
			gauges = append(gauges, g)
		}
	}
	merged := telemetry.MergeSnapshots(groups...)
	if req.URL.Query().Get("format") == "json" {
		out := map[string]any{"histograms": merged, "gauges": gauges}
		if len(errs) > 0 {
			out["partial"] = true
			out["errors"] = errs
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, merged, gauges)
}

func backendUp(node string, v float64) telemetry.Gauge {
	return telemetry.Gauge{
		Name:   "welmax_backend_up",
		Labels: []telemetry.Label{{Name: "node", Value: node}},
		Value:  v,
	}
}
