// Package service implements welmaxd, the welfare-allocation daemon: an
// HTTP/JSON API over the library that keeps graphs resident in an
// in-memory registry, runs allocation and welfare estimation as
// asynchronous jobs on a bounded worker pool, and amortizes RR-sketch
// generation — the dominant cost of every allocation — through a
// concurrency-safe sketch cache, so repeated and concurrent queries
// against the same network reuse sketches instead of regenerating them.
// Concurrent requests that differ only in budgets additionally coalesce
// onto one dominating sketch build (Options.BatchWindow, via
// internal/batch), and cost-based admission control
// (Options.AdmissionMB) refuses — retryably, with 429 — requests whose
// predicted sketch cost would blow the cache budget.
//
// Endpoints (docs/API.md is the complete reference, kept in sync with
// the mux by scripts/apidocs_check.sh):
//
//	POST   /v1/graphs                  load an edge list or generate a built-in network
//	                                   (content-addressed: duplicates dedupe to the resident entry)
//	POST   /v1/graphs/import           register raw .wmg bytes (cluster-internal, token-gated)
//	GET    /v1/graphs                  list resident graphs
//	GET    /v1/graphs/{id}             one graph's info
//	DELETE /v1/graphs/{id}             remove a graph, its sketches, and its persisted artifacts
//	POST   /v1/graphs/{id}/warm        prebuild a sketch as a cancelable job (admission applies)
//	GET    /v1/graphs/{id}/export      the resident graph as .wmg bytes
//	GET    /v1/graphs/{id}/sketches    export warm sketches as a .wms stream (cluster-internal)
//	POST   /v1/graphs/{id}/sketches    import a shipped sketch stream (cluster-internal)
//	GET    /v1/algorithms              list registered planners with capability flags
//	POST   /v1/allocate                enqueue an allocation job; 429 + retryable over the
//	                                   admission budget; returns a job id
//	POST   /v1/estimate                enqueue a welfare-estimation job; returns a job id
//	GET    /v1/jobs                    list jobs (?state= filters)
//	GET    /v1/jobs/{id}               poll a job (queued → running → done | failed | canceled)
//	GET    /v1/jobs/{id}/events        stream job progress as server-sent events
//	DELETE /v1/jobs/{id}               cancel an active job / delete a finished one
//	POST   /v1/sweeps                  expand a declarative experiment grid into cells and
//	                                   run them through the job pool; returns a sweep id
//	GET    /v1/sweeps                  list sweeps
//	GET    /v1/sweeps/{id}             poll a sweep (cell counters in the stats payload)
//	GET    /v1/sweeps/{id}/events      per-cell progress as server-sent events
//	GET    /v1/sweeps/{id}/results     filter/group_by aggregation over the result artifact
//	DELETE /v1/sweeps/{id}             cancel an active sweep / delete a finished one
//	GET    /v1/stats                   cache/batch/admission/disk counters, jobs by state,
//	                                   worker utilization
//	GET    /v1/metrics                 latency histograms + gauges, Prometheus text
//	                                   (?format=json for the mergeable form)
//	GET    /healthz                    plain liveness
//	GET    /v1/healthz                 structured liveness (node identity; the router's probe)
package service

import (
	"fmt"

	"uicwelfare/internal/core"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

// GraphRequest is the body of POST /v1/graphs. Exactly one source must
// be given: Network (a built-in synthetic stand-in), Edges (an inline
// "u v [p]" edge list), or Path (a server-side edge-list file).
type GraphRequest struct {
	// Name is the caller's label for the graph; defaults to the network
	// name or the path.
	Name string `json:"name,omitempty"`

	// Network selects a built-in generator
	// (flixster|douban-book|douban-movie|twitter|orkut).
	Network string  `json:"network,omitempty"`
	Scale   float64 `json:"scale,omitempty"` // default 1.0
	Seed    uint64  `json:"seed,omitempty"`  // default 1

	// Edges is inline edge-list content; Path is a server-side file.
	Edges    string `json:"edges,omitempty"`
	Path     string `json:"path,omitempty"`
	Directed *bool  `json:"directed,omitempty"` // default true

	// Wmg is an inline binary .wmg graph (base64 in JSON). The cluster
	// router ships graphs between backends with it: the codec preserves
	// exact probabilities, so the content address recomputed on the
	// receiving backend matches the sender's.
	Wmg []byte `json:"wmg,omitempty"`

	// KeepProbs keeps the probabilities of the edge list instead of
	// resetting them to the weighted-cascade 1/indeg(v) default.
	KeepProbs bool `json:"keep_probs,omitempty"`
}

// GraphInfo describes one resident graph.
type GraphInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	// ResidentSketches counts this node's cached sketches for the graph.
	// Filled on GET /v1/graphs/{id} (the registry itself cannot see the
	// cache); the cluster placement view reads it per backend.
	ResidentSketches int `json:"resident_sketches,omitempty"`
}

// AllocateRequest is the body of POST /v1/allocate: solve a WelMax
// instance on a resident graph.
type AllocateRequest struct {
	GraphID string `json:"graph_id"`
	// Algo names a planner registered in the core algorithm registry
	// (GET /v1/algorithms lists them); empty selects
	// core.DefaultAlgorithm (bundleGRD).
	Algo string `json:"algo,omitempty"`
	// Config names the utility configuration
	// (config1|config3|additive|cone|levelwise|real|real-smoothed).
	Config string `json:"config,omitempty"`
	// Items is the item count for the additive/cone/levelwise
	// configurations; defaults to len(Budgets).
	Items   int   `json:"items,omitempty"`
	Budgets []int `json:"budgets"`
	// Eps and Ell are the approximation parameters (defaults 0.5, 1).
	Eps float64 `json:"eps,omitempty"`
	Ell float64 `json:"ell,omitempty"`
	// Cascade is ic (default) or lt.
	Cascade string `json:"cascade,omitempty"`
	// Seed seeds the RNGs for sketch generation and welfare estimation.
	// Note the sketch cache is deliberately keyed without the seed —
	// any sketch of the right size is statistically valid, so a request
	// may reuse a sketch built under an earlier request's seed. Results
	// are deterministic per daemon cache state, not per seed; for
	// strict seed reproducibility use `welmax -json`.
	Seed uint64 `json:"seed,omitempty"`
	// Runs is the Monte-Carlo run count for the welfare estimate
	// appended to the result; 0 skips the estimate.
	Runs int `json:"runs,omitempty"`
	// Workers parallelizes the welfare estimate (default 1).
	Workers int `json:"workers,omitempty"`
}

// AllocationDTO is a seed allocation in wire form: Seeds[i] lists the
// seed nodes of item i.
type AllocationDTO struct {
	Seeds [][]int64 `json:"seeds"`
}

// Request caps: allocation/estimation work is CPU- and memory-bound, so
// an unauthenticated daemon rejects parameters that could exhaust the
// host (the utility table alone is 2^k entries).
const (
	// MaxItems bounds the item count k (utility tables are 2^k floats).
	MaxItems = 16
	// MaxRuns bounds Monte-Carlo welfare runs per request.
	MaxRuns = 10_000_000
	// MaxEstimateWorkers bounds per-request estimator goroutines.
	MaxEstimateWorkers = 64
	// MaxGraphNodes bounds generated stand-in networks (scale × default
	// size); loaded edge lists are already bounded by the body cap.
	MaxGraphNodes = 2_000_000
	// MaxSeedPairs bounds the total (node, item) pairs of an estimate
	// request's allocation — each Monte-Carlo run walks every pair.
	MaxSeedPairs = 100_000
	// MinEps / MaxEll bound the approximation parameters: RR-sketch
	// size grows as ~ℓ/ε², so a tiny ε or huge ℓ is a memory bomb.
	// (ε or ℓ left unset fall back to the paper's 0.5 and 1.)
	MinEps = 0.05
	MaxEll = 10.0
)

// NewAllocationDTO converts a uic.Allocation to wire form.
func NewAllocationDTO(a *uic.Allocation) AllocationDTO {
	out := AllocationDTO{Seeds: make([][]int64, a.K())}
	for i, seeds := range a.Seeds {
		out.Seeds[i] = make([]int64, len(seeds))
		for j, v := range seeds {
			out.Seeds[i][j] = int64(v)
		}
	}
	return out
}

// Allocation converts the wire form back to a uic.Allocation.
func (d AllocationDTO) Allocation() *uic.Allocation {
	a := uic.NewAllocation(len(d.Seeds))
	for i, seeds := range d.Seeds {
		for _, v := range seeds {
			a.Assign(graph.NodeID(v), i)
		}
	}
	return a
}

// WelfareDTO is a Monte-Carlo welfare estimate in wire form.
type WelfareDTO struct {
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"stderr"`
	Runs   int     `json:"runs"`
}

// AllocateResult is the result payload of an allocation job. The welmax
// CLI's -json mode emits the same struct (via NewAllocateResult), so
// CLI and daemon outputs are interchangeable.
type AllocateResult struct {
	Algorithm  string        `json:"algorithm"`
	Allocation AllocationDTO `json:"allocation"`
	// SeedOrder is bundleGRD's prefix-preserving ordering (empty for
	// the baselines).
	SeedOrder      []int64 `json:"seed_order,omitempty"`
	NumRRSets      int     `json:"num_rr_sets"`
	TotalRRSets    int     `json:"total_rr_sets"`
	IMMInvocations int     `json:"imm_invocations"`
	// SketchCached reports whether the allocation reused a cached RR
	// sketch instead of generating one (always false in the CLI).
	SketchCached bool        `json:"sketch_cached"`
	Welfare      *WelfareDTO `json:"welfare,omitempty"`
	ElapsedMS    int64       `json:"elapsed_ms"`
}

// NewAllocateResult assembles the shared wire payload from an algorithm
// run; both service.Allocate and `welmax -json` go through it so the two
// outputs cannot drift.
func NewAllocateResult(algo string, res core.Result) *AllocateResult {
	out := &AllocateResult{
		Algorithm:      algo,
		Allocation:     NewAllocationDTO(res.Alloc),
		NumRRSets:      res.NumRRSets,
		TotalRRSets:    res.TotalRRSets,
		IMMInvocations: res.IMMInvocations,
	}
	for _, v := range res.SeedOrder {
		out.SeedOrder = append(out.SeedOrder, int64(v))
	}
	return out
}

// AlgorithmInfo is one entry of GET /v1/algorithms: a registered
// planner's name and capability flags.
type AlgorithmInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Default marks the planner an empty "algo" field resolves to.
	Default bool `json:"default"`
	// SketchCacheable reports whether the daemon's sketch cache can
	// amortize the planner's dominant cost across requests.
	SketchCacheable bool `json:"sketch_cacheable"`
	// SketchFamily is the cached sketch kind ("prima", "imm"); empty
	// when not sketch-cacheable.
	SketchFamily string `json:"sketch_family,omitempty"`
	// Cascades lists the supported diffusion models.
	Cascades []string `json:"cascades"`
}

// Algorithms lists every planner registered in the core registry in
// wire form.
func Algorithms() []AlgorithmInfo {
	metas := core.Algorithms()
	out := make([]AlgorithmInfo, len(metas))
	for i, m := range metas {
		out[i] = AlgorithmInfo{
			Name:            m.Name,
			Description:     m.Description,
			Default:         m.Name == core.DefaultAlgorithm,
			SketchCacheable: m.SketchCacheable(),
			SketchFamily:    m.SketchFamily,
			Cascades:        m.Cascades,
		}
	}
	return out
}

// WarmRequest is the body of POST /v1/graphs/{id}/warm: prebuild the
// sketch an equivalent allocate request (same algo, budgets, ε, ℓ,
// cascade) would need, as an ordinary cancelable job. With a data
// directory configured the built sketch also spills to disk, so warming
// survives restarts.
type WarmRequest struct {
	Algo    string  `json:"algo,omitempty"`
	Config  string  `json:"config,omitempty"`
	Items   int     `json:"items,omitempty"`
	Budgets []int   `json:"budgets"`
	Eps     float64 `json:"eps,omitempty"`
	Ell     float64 `json:"ell,omitempty"`
	Cascade string  `json:"cascade,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
}

// WarmResult is the result payload of a warm job.
type WarmResult struct {
	Algorithm    string `json:"algorithm"`
	SketchFamily string `json:"sketch_family"`
	// AlreadyWarm reports that some cache tier already had the sketch
	// and nothing was built.
	AlreadyWarm bool  `json:"already_warm"`
	NumRRSets   int   `json:"num_rr_sets"`
	ElapsedMS   int64 `json:"elapsed_ms"`
}

// EstimateRequest is the body of POST /v1/estimate: Monte-Carlo estimate
// the expected social welfare of an explicit allocation.
type EstimateRequest struct {
	GraphID    string        `json:"graph_id"`
	Config     string        `json:"config,omitempty"`
	Items      int           `json:"items,omitempty"`
	Allocation AllocationDTO `json:"allocation"`
	Cascade    string        `json:"cascade,omitempty"`
	Seed       uint64        `json:"seed,omitempty"`
	Runs       int           `json:"runs,omitempty"`    // default 10000
	Workers    int           `json:"workers,omitempty"` // default 1
}

// EstimateResult is the result payload of an estimation job.
type EstimateResult struct {
	Welfare   WelfareDTO `json:"welfare"`
	ElapsedMS int64      `json:"elapsed_ms"`
}

// BuildModel constructs a utility configuration by name, matching the
// welmax CLI's -config flag. items <= 0 defaults to budgetCount.
func BuildModel(name string, items, budgetCount int, seed uint64) (*utility.Model, error) {
	if name == "" {
		name = "config1"
	}
	if items <= 0 {
		items = budgetCount
	}
	switch name {
	case "config1":
		return utility.Config1(), nil
	case "config3":
		return utility.Config3(), nil
	case "additive":
		return utility.Config5(items), nil
	case "cone":
		return utility.ConfigCone(items, 0), nil
	case "levelwise":
		return utility.Config8(items, stats.NewRNG(seed^0xbeef)), nil
	case "real":
		return utility.RealParams(), nil
	case "real-smoothed":
		return utility.RealParamsSmoothed(), nil
	}
	return nil, fmt.Errorf("unknown configuration %q", name)
}

// ParseCascade maps the wire name to a graph.Cascade.
func ParseCascade(name string) (graph.Cascade, error) {
	switch name {
	case "", "ic":
		return graph.CascadeIC, nil
	case "lt":
		return graph.CascadeLT, nil
	}
	return graph.CascadeIC, fmt.Errorf("unknown cascade %q", name)
}
