package welfare

import (
	"fmt"

	"uicwelfare/internal/expr"
	"uicwelfare/internal/graph"
)

// NetworkNames lists the built-in synthetic stand-ins for the paper's
// datasets (Table 2): flixster, douban-book, douban-movie, twitter,
// orkut.
func NetworkNames() []string {
	names := make([]string, len(expr.Networks))
	for i, ns := range expr.Networks {
		names[i] = ns.Name
	}
	return names
}

// GenerateNetwork synthesizes one of the built-in stand-in networks at
// the given scale (1.0 = default size) with weighted-cascade edge
// probabilities. It panics on an unknown name; see NetworkNames.
//
// Deprecated: use GenerateNetworkE, which reports an unknown name as an
// error instead of panicking — what the service and CLI paths need to
// turn bad input into a 400/usage message. Unlike GenerateNetworkE,
// this wrapper passes scale and seed through verbatim (no defaulting),
// preserving the graphs existing callers reproduce.
func GenerateNetwork(name string, scale float64, seed uint64) *Graph {
	spec, err := expr.NetworkByName(name)
	if err != nil {
		panic(err)
	}
	return spec.Generate(scale, seed)
}

// GenerateNetworkE synthesizes one of the built-in stand-in networks at
// the given scale (non-positive defaults to 1.0 = default size; seed 0
// defaults to 1) with weighted-cascade edge probabilities. An unknown
// name is an error listing the valid names.
func GenerateNetworkE(name string, scale float64, seed uint64) (*Graph, error) {
	g, err := expr.GenerateByName(name, scale, seed)
	if err != nil {
		return nil, fmt.Errorf("%w (have %v)", err, NetworkNames())
	}
	return g, nil
}

// BuildGraph assembles a directed graph from explicit (u, v, p) triples.
func BuildGraph(n int, edges [][3]float64) *Graph { return graph.FromEdges(n, edges) }

// ErdosRenyi generates a directed G(n, m) random graph (probabilities
// unset; call WeightedCascade or UniformProb on the result).
func ErdosRenyi(n, m int, rng *RNG) *Graph { return graph.ErdosRenyi(n, m, rng) }

// BarabasiAlbert generates an undirected preferential-attachment graph.
func BarabasiAlbert(n, k int, rng *RNG) *Graph { return graph.BarabasiAlbert(n, k, rng) }

// PreferentialDirected generates a directed heavy-tailed graph with
// partial reciprocity, the stand-in shape for follower networks.
func PreferentialDirected(n, k int, rng *RNG) *Graph {
	return graph.PreferentialDirected(n, k, rng)
}
