package imm

import (
	"context"
	"math"
	"testing"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/rrset"
	"uicwelfare/internal/stats"
)

func evalSpread(g *graph.Graph, seeds []graph.NodeID, seed uint64) float64 {
	eval := rrset.NewCollection(g)
	eval.Grow(20000, stats.NewRNG(seed))
	return float64(g.N()) * eval.FractionCovered(seeds)
}

// TestParallelBuildWelfareMatchesSerial: IMM sketches built with
// parallel RR-set growth select seed sets whose estimated spread is
// within sampling tolerance of the serial build's, across three graph
// families.
func TestParallelBuildWelfareMatchesSerial(t *testing.T) {
	families := map[string]*graph.Graph{
		"barabasi-albert": graph.BarabasiAlbert(300, 3, stats.NewRNG(201)).WeightedCascade(),
		"watts-strogatz":  graph.WattsStrogatz(300, 6, 0.2, stats.NewRNG(202)).WeightedCascade(),
		"power-law":       graph.PowerLawGraph(300, 2.2, 5, stats.NewRNG(203)).WeightedCascade(),
	}
	const k = 8
	for name, g := range families {
		serial, err := BuildSketchCtx(context.Background(), g, k, Options{}, stats.NewRNG(7))
		if err != nil {
			t.Fatalf("%s: serial build: %v", name, err)
		}
		par, err := BuildSketchCtx(context.Background(), g, k, Options{Workers: 4}, stats.NewRNG(8))
		if err != nil {
			t.Fatalf("%s: parallel build: %v", name, err)
		}
		ss := evalSpread(g, serial.Select().Seeds, 903)
		ps := evalSpread(g, par.Select().Seeds, 903)
		if math.Abs(ss-ps) > 0.15*math.Max(ss, ps)+1 {
			t.Errorf("%s: serial spread %.2f vs parallel %.2f beyond tolerance", name, ss, ps)
		}
	}
}

// TestExtendSketchMatchesColdBuild: an IMM sketch extended to a larger
// total budget must match a cold build at that budget — same selection
// size, spread within tolerance, base sketch untouched.
func TestExtendSketchMatchesColdBuild(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, stats.NewRNG(204)).WeightedCascade()
	opts := Options{Workers: 2}
	base, err := BuildSketchCtx(context.Background(), g, 5, opts, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	baseLen := base.NumRRSets()

	const newK = 12
	ext, err := ExtendSketchCtx(context.Background(), g, base, newK, opts, stats.NewRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := BuildSketchCtx(context.Background(), g, newK, opts, stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}

	if base.NumRRSets() != baseLen {
		t.Fatalf("extension mutated base sketch: %d sets, had %d", base.NumRRSets(), baseLen)
	}
	if ext.K != newK {
		t.Fatalf("extended K = %d, want %d", ext.K, newK)
	}
	if ext.NumRRSets() <= baseLen {
		t.Fatalf("extension did not grow the collection: %d <= %d", ext.NumRRSets(), baseLen)
	}
	eres, cres := ext.Select(), cold.Select()
	if len(eres.Seeds) != len(cres.Seeds) {
		t.Fatalf("selection sizes differ: extended %d vs cold %d", len(eres.Seeds), len(cres.Seeds))
	}
	es := evalSpread(g, eres.Seeds, 904)
	cs := evalSpread(g, cres.Seeds, 904)
	if math.Abs(es-cs) > 0.15*math.Max(es, cs)+1 {
		t.Errorf("extended spread %.2f vs cold %.2f beyond tolerance", es, cs)
	}
}

// TestExtendSketchDominatedSharesCollection: extending to k' <= K needs
// no new samples and shares the base collection read-only.
func TestExtendSketchDominatedSharesCollection(t *testing.T) {
	g := graph.BarabasiAlbert(250, 3, stats.NewRNG(205)).WeightedCascade()
	base, err := BuildSketchCtx(context.Background(), g, 10, Options{}, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	ext, err := ExtendSketchCtx(context.Background(), g, base, 4, Options{}, stats.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Col != base.Col {
		t.Fatal("dominated extension should share the base collection")
	}
	if ext.K != 10 {
		t.Fatalf("K = %d, want retained 10", ext.K)
	}
}

// TestExtendSketchRejections: degenerate and invalid-budget extensions
// error so callers fall back to a cold build.
func TestExtendSketchRejections(t *testing.T) {
	g := graph.BarabasiAlbert(100, 3, stats.NewRNG(206)).WeightedCascade()
	rng := stats.NewRNG(31)
	if _, err := ExtendSketchCtx(context.Background(), g, nil, 5, Options{}, rng); err == nil {
		t.Fatal("nil sketch extended")
	}
	base, err := BuildSketchCtx(context.Background(), g, 5, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtendSketchCtx(context.Background(), g, base, 0, Options{}, rng); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := ExtendSketchCtx(context.Background(), g, base, 100, Options{}, rng); err == nil {
		t.Fatal("whole-graph budget accepted")
	}
}
