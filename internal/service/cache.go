package service

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"uicwelfare/internal/telemetry"
)

// SketchCache is the in-memory tier of the sketch cache: a
// concurrency-safe, cost-bounded LRU of RR sketches (prima.Sketch /
// imm.Sketch values) keyed by the tuple that determines their
// distribution: (graph, sketch family, cascade model, ε, ℓ, canonical
// budgets). Sketch generation is the dominant cost of every allocation,
// and a built sketch is immutable and safe for concurrent readers, so
// the cache lets repeated and concurrent queries against the same
// resident network reuse one sketch instead of regenerating it. (The
// optional disk tier below it lives in internal/store; the service
// consults it inside the build callback, so this type stays purely
// in-memory.)
//
// Eviction is cost-aware: each completed entry is priced by the
// configured cost function (approximate resident bytes — RR memberships,
// not entry count), and the cache evicts least-recently-used completed
// entries while it exceeds either the entry bound or the byte budget. A
// 64-entry bound means very different things for 1k-node and 1M-node
// graphs; the byte budget (welmaxd -cache-mb) is what actually protects
// the heap.
//
// Lookups have singleflight semantics: the first goroutine to request a
// key builds the sketch while later requesters for the same key wait on
// it and then share the result — concurrent identical queries trigger
// exactly one generation, and every waiter counts as a hit.
type SketchCache struct {
	mu         sync.Mutex
	maxEntries int
	maxCost    int64         // byte budget; 0 = unbounded
	ttl        time.Duration // completed-entry lifetime; 0 = immortal
	now        func() time.Time
	costOf     func(any) int64 // prices a completed sketch; nil = cost 0
	entries    map[string]*cacheEntry
	tick       uint64 // logical clock for LRU ordering
	totalCost  int64  // sum of completed entries' costs

	hits        int64
	misses      int64
	evictions   int64
	expirations int64

	// onExpire, when set, receives each expired key. Called under the
	// cache lock, so it must stay cheap — the service wires it to unlink
	// the key's disk spill (one os.Remove), without which a TTL expiry
	// would "rebuild" by reloading the identical stale spill from disk.
	onExpire func(key string)
	// onEvict, when set, receives each key dropped by LRU/cost eviction
	// with its priced cost and the trace id of the request whose insert
	// displaced it ("" when the trigger carried no trace, e.g. a
	// rebalance import). Also called under the cache lock — the service
	// wires it to the control-plane journal's O(1) ring append.
	onEvict func(key string, cost int64, traceID string)
}

type cacheEntry struct {
	ready    chan struct{} // closed when sketch/err are set
	sketch   any
	err      error
	cost     int64 // set when the build completes; in-flight entries cost 0
	lastUsed uint64
	// expires is the TTL deadline, set when the build completes; zero
	// means the entry never expires. In-flight entries cannot expire.
	expires time.Time
	// evictOnReady marks an in-flight entry whose key was invalidated
	// mid-build (graph deleted); the builder removes it on completion.
	evictOnReady bool
}

// NewSketchCache returns a cache bounded to maxEntries sketches (default
// 64 if maxEntries <= 0) and, when maxCostBytes > 0, to a total
// completed-entry cost of maxCostBytes as priced by cost (which may be
// nil when no byte budget is set). A positive ttl additionally bounds
// every completed entry's lifetime: past it the entry reads as a miss
// and is rebuilt, so a long-running daemon's sketches are periodically
// refreshed instead of pinning one early sample forever.
func NewSketchCache(maxEntries int, maxCostBytes int64, ttl time.Duration, cost func(any) int64) *SketchCache {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	return &SketchCache{
		maxEntries: maxEntries,
		maxCost:    maxCostBytes,
		ttl:        ttl,
		now:        time.Now,
		costOf:     cost,
		entries:    map[string]*cacheEntry{},
	}
}

// expireLocked removes a completed entry whose TTL has passed, counting
// the expiry. It reports whether the entry was dropped. Caller holds
// c.mu.
func (c *SketchCache) expireLocked(key string, e *cacheEntry) bool {
	if c.ttl <= 0 || e.expires.IsZero() || c.now().Before(e.expires) {
		return false
	}
	c.totalCost -= e.cost
	delete(c.entries, key)
	c.expirations++
	if c.onExpire != nil {
		c.onExpire(key)
	}
	return true
}

// SetExpireHook registers the expired-key callback (see onExpire).
func (c *SketchCache) SetExpireHook(fn func(key string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onExpire = fn
}

// SetEvictHook registers the evicted-key callback (see onEvict).
func (c *SketchCache) SetEvictHook(fn func(key string, cost int64, traceID string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onEvict = fn
}

// sweepExpiredLocked drops every expired completed entry (Stats calls
// it so the expiration counter advances even on an idle daemon). Caller
// holds c.mu.
func (c *SketchCache) sweepExpiredLocked() {
	if c.ttl <= 0 {
		return
	}
	for k, e := range c.entries {
		select {
		case <-e.ready:
			c.expireLocked(k, e)
		default:
		}
	}
}

// GetOrBuild returns the sketch cached under key, building it with build
// on a miss. hit reports whether an existing (possibly still in-flight)
// sketch was reused. On build error nothing is cached; waiters receive
// the error and the next request rebuilds.
func (c *SketchCache) GetOrBuild(key string, build func() (any, error)) (sketch any, hit bool, err error) {
	return c.GetOrBuildCtx(context.Background(), key, build)
}

// GetOrBuildCtx is GetOrBuild with a cancelable wait: a caller blocked
// on another request's in-flight build returns ctx.Err() as soon as its
// own context is canceled, without disturbing the build (remaining
// waiters still get the sketch). The build callback itself is expected
// to watch the builder's context — a canceled build reports its error to
// every waiter and caches nothing, so the next request rebuilds.
func (c *SketchCache) GetOrBuildCtx(ctx context.Context, key string, build func() (any, error)) (sketch any, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		// An expired completed entry reads as a miss and is dropped;
		// this caller becomes the rebuilder. In-flight entries have no
		// deadline yet and are always shared.
		expired := false
		select {
		case <-e.ready:
			expired = c.expireLocked(key, e)
		default:
		}
		if !expired {
			c.tick++
			e.lastUsed = c.tick
			c.hits++
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, true, ctx.Err()
			}
			return e.sketch, true, e.err
		}
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.tick++
	e.lastUsed = c.tick
	c.entries[key] = e
	c.misses++
	// Evictions this insert causes are attributed to its trace, so the
	// journal can answer "which request displaced my warm sketch".
	traceID := telemetry.FromContext(ctx).ID()
	c.evictLocked(key, traceID)
	c.mu.Unlock()

	e.sketch, e.err = build()
	c.mu.Lock()
	switch {
	case (e.err != nil || e.evictOnReady) && c.entries[key] == e:
		delete(c.entries, key)
	case e.err == nil && c.entries[key] == e:
		// The entry graduates from in-flight to completed: price it,
		// start its TTL clock, and re-run eviction, since the cache may
		// now exceed its byte budget.
		if c.costOf != nil {
			e.cost = c.costOf(e.sketch)
		}
		if c.ttl > 0 {
			e.expires = c.now().Add(c.ttl)
		}
		c.totalCost += e.cost
		c.evictLocked(key, traceID)
	}
	c.mu.Unlock()
	close(e.ready)
	return e.sketch, false, e.err
}

// LookupCtx returns the sketch cached under key without building on a
// miss: a completed (unexpired) entry returns immediately, an in-flight
// entry is waited on (cancelably, like GetOrBuildCtx's waiter path), and
// a miss reports ok = false without creating an entry or counting a
// miss. The batch scheduler uses it as its fast path — on a miss the
// build decision belongs to the gather window, not to this lookup.
func (c *SketchCache) LookupCtx(ctx context.Context, key string) (sketch any, ok bool, err error) {
	c.mu.Lock()
	if e, present := c.entries[key]; present {
		expired := false
		select {
		case <-e.ready:
			expired = c.expireLocked(key, e)
		default:
		}
		if !expired {
			c.tick++
			e.lastUsed = c.tick
			c.hits++
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, true, ctx.Err()
			}
			return e.sketch, true, e.err
		}
	}
	c.mu.Unlock()
	return nil, false, nil
}

// Resident reports whether key currently has a completed, unexpired, or
// in-flight entry, without touching LRU order or counters. Admission
// control uses it: a request whose sketch is already resident (or being
// built) triggers no new sketch work, so it is admitted regardless of
// its predicted cost.
func (c *SketchCache) Resident(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	select {
	case <-e.ready:
		if e.err != nil {
			return false
		}
		// An expired entry will read as a miss; report it absent without
		// dropping it here (lookups own expiry so the counters stay
		// consistent).
		return c.ttl <= 0 || e.expires.IsZero() || c.now().Before(e.expires)
	default:
		return true // in-flight: the build is already paid for
	}
}

// Peek returns the completed, unexpired sketch under key without
// waiting on in-flight builds, touching LRU order, or counting a hit or
// miss. The batched extend path uses it from inside a build callback:
// blocking there on another key's in-flight entry could deadlock, and a
// miss must not disturb the counters the benchmarks assert on.
func (c *SketchCache) Peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	select {
	case <-e.ready:
		if e.err != nil {
			return nil, false
		}
		if c.ttl > 0 && !e.expires.IsZero() && !c.now().Before(e.expires) {
			return nil, false
		}
		return e.sketch, true
	default:
		return nil, false
	}
}

// CountPrefix counts the resident (completed-ok, unexpired, or
// in-flight) entries whose key starts with prefix. Sketch keys lead
// with the graph id (see SketchKey), so CountPrefix(graphID+"|") is the
// graph's sketch residency — what the cluster placement view reports
// per node.
func (c *SketchCache) CountPrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, e := range c.entries {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		select {
		case <-e.ready:
			if e.err == nil && (c.ttl <= 0 || e.expires.IsZero() || c.now().Before(e.expires)) {
				n++
			}
		default:
			n++
		}
	}
	return n
}

// evictLocked drops least-recently-used completed entries until the
// cache fits both the entry bound and the byte budget. The entry under
// keep and entries still building are never evicted — a single sketch
// over the budget is kept until something else displaces it (evicting
// the only copy would just force an immediate rebuild). traceID names
// the request whose insert triggered the eviction (for the journal
// hook); "" when none. Caller holds c.mu.
func (c *SketchCache) evictLocked(keep, traceID string) {
	for len(c.entries) > c.maxEntries || (c.maxCost > 0 && c.totalCost > c.maxCost) {
		victim := ""
		var oldest uint64
		for k, e := range c.entries {
			if k == keep {
				continue
			}
			select {
			case <-e.ready:
			default:
				continue // still building
			}
			if victim == "" || e.lastUsed < oldest {
				victim, oldest = k, e.lastUsed
			}
		}
		if victim == "" {
			return // everything else is in flight
		}
		cost := c.entries[victim].cost
		c.totalCost -= cost
		delete(c.entries, victim)
		c.evictions++
		if c.onEvict != nil {
			c.onEvict(victim, cost, traceID)
		}
	}
}

// Put inserts an already-built sketch (a rebalancing import, not a
// local build) as a completed entry under key, reporting whether it was
// added. An existing entry — completed or still building — wins: the
// import must not disturb in-flight waiters or displace a fresher local
// build.
func (c *SketchCache) Put(key string, sketch any) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		// A resident expired entry is the one exception: replacing it is
		// strictly better than the rebuild the next lookup would do.
		select {
		case <-e.ready:
			if !c.expireLocked(key, e) {
				return false
			}
		default:
			return false
		}
	}
	e := &cacheEntry{ready: make(chan struct{}), sketch: sketch}
	close(e.ready)
	if c.costOf != nil {
		e.cost = c.costOf(sketch)
	}
	if c.ttl > 0 {
		e.expires = c.now().Add(c.ttl)
	}
	c.tick++
	e.lastUsed = c.tick
	c.entries[key] = e
	c.totalCost += e.cost
	c.evictLocked(key, "")
	return true
}

// KeyedSketch is one completed cache entry, as exported by
// CompletedForGraph for sketch shipping.
type KeyedSketch struct {
	Key    string
	Sketch any
}

// CompletedForGraph returns the completed, unexpired entries belonging
// to a graph, sorted by key for a deterministic export order. In-flight
// builds are skipped — the importer would have to wait on them, and the
// rebalancer wants a point-in-time snapshot.
func (c *SketchCache) CompletedForGraph(graphID string) []KeyedSketch {
	prefix := graphID + "|"
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []KeyedSketch
	for k, e := range c.entries {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		select {
		case <-e.ready:
			if e.err != nil || c.expireLocked(k, e) {
				continue
			}
			out = append(out, KeyedSketch{Key: k, Sketch: e.sketch})
		default:
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// InvalidateGraph drops every entry whose key belongs to the given
// graph (keys start with "<graphID>|" — see SketchKey). Called when a
// graph is deleted so its sketches don't outlive it. Entries still
// building are marked and removed by their builder on completion (the
// graph id may be re-registered later, but its sketches are rebuilt
// fresh).
func (c *SketchCache) InvalidateGraph(graphID string) {
	prefix := graphID + "|"
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		select {
		case <-e.ready:
			c.totalCost -= e.cost
			delete(c.entries, k)
		default:
			e.evictOnReady = true
		}
	}
}

// Reset drops every completed entry, keeping counters. In-flight builds
// are untouched: their waiters hold the entry directly, and the
// builder's delete-on-error guard compares pointers, so a build racing
// a Reset completes harmlessly.
func (c *SketchCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		select {
		case <-e.ready:
			c.totalCost -= e.cost
			delete(c.entries, k)
		default:
		}
	}
}

// CacheStats is the /v1/stats view of the in-memory sketch tier.
type CacheStats struct {
	Entries int `json:"entries"`
	// EntriesByFamily breaks Entries down by sketch family ("prima",
	// "imm"), so an operator can see what kind of work a shard holds —
	// one aggregate number hides a cache full of the wrong family.
	EntriesByFamily map[string]int `json:"entries_by_family,omitempty"`
	Hits            int64          `json:"hits"`
	Misses          int64          `json:"misses"`
	Evictions       int64          `json:"evictions"`
	// Expirations counts completed entries dropped by the TTL
	// (-cache-ttl); 0 with no TTL configured.
	Expirations int64 `json:"expirations"`
	// CostBytes is the approximate resident cost of the completed
	// entries; MaxCostBytes is the configured budget (0 = unbounded).
	CostBytes    int64 `json:"cost_bytes"`
	MaxCostBytes int64 `json:"max_cost_bytes,omitempty"`
}

// Stats snapshots the counters, first sweeping expired entries so the
// TTL is visible even without traffic touching the expired keys.
func (c *SketchCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepExpiredLocked()
	families := map[string]int{}
	for k := range c.entries {
		families[familyOfKey(k)]++
	}
	return CacheStats{
		Entries:         len(c.entries),
		EntriesByFamily: families,
		Hits:            c.hits,
		Misses:          c.misses,
		Evictions:       c.evictions,
		Expirations:     c.expirations,
		CostBytes:       c.totalCost,
		MaxCostBytes:    c.maxCost,
	}
}

// familyOfKey extracts the sketch family from a cache key (its second
// "|"-separated segment — see SketchKey).
func familyOfKey(key string) string {
	parts := strings.SplitN(key, "|", 3)
	if len(parts) < 2 {
		return "unknown"
	}
	return parts[1]
}

// SketchKey derives the cache key for a sketch request. family is the
// sketch kind ("prima" or "imm"), budgets must already be in canonical
// form (prima.CanonicalBudgets, or [k] for IMM). With content-addressed
// graph ids the whole key is stable across daemon restarts, which is
// what lets the disk tier index spilled sketches by a hash of it.
func SketchKey(graphID, family string, cascade int, eps, ell float64, budgets []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|c%d|e%g|l%g|", graphID, family, cascade, eps, ell)
	for i, x := range budgets {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}
