// Command welmaxd serves welfare-maximization queries over HTTP. It
// keeps social networks resident in memory, runs allocation and welfare
// estimation as asynchronous jobs on a bounded worker pool, and caches
// RR sketches so repeated and concurrent queries against the same
// network skip regeneration — the serving counterpart of the one-shot
// welmax CLI. With -data-dir it also persists graphs (content-addressed,
// so ids are stable) and spills built sketches to disk, so a restarted
// daemon keeps its graph ids and answers its first repeated allocate
// from a warm path. Concurrent allocate requests that differ only in
// budgets are coalesced onto one dominating sketch build
// (-batch-window, on by default). Sketch builds shard RR-set sampling
// across -sketch-workers goroutines (GOMAXPROCS by default; 1 restores
// the legacy serial path) with deterministic per-worker RNG streams,
// and a batched build whose group already holds a resident
// near-dominating sketch extends it — appending RR sets and re-running
// selection — instead of rebuilding (sketch_extends / rr_sets_appended
// in /v1/stats). -admission-mb adds cost-based
// admission control: requests whose predicted sketch cost exceeds the
// budget answer 429 with a retryable body instead of queueing
// (-admission-queue holds near-budget requests briefly before the 429).
// POST /v1/sweeps runs a whole experiment grid — graphs × utility
// configs × ε × budget vectors × planners — as one job: cells stream
// per-cell progress over SSE and results land as a checksummed .wsr
// artifact served with filters and group-by aggregation from
// GET /v1/sweeps/{id}/results.
//
// Quick start:
//
//	welmaxd -addr :8080 -data-dir /var/lib/welmaxd &
//	curl -s localhost:8080/v1/algorithms
//	curl -s -X POST localhost:8080/v1/graphs -d '{"network":"flixster"}'
//	curl -s -X POST localhost:8080/v1/allocate \
//	    -d '{"graph_id":"<id from the previous call>","budgets":[50,50],"runs":10000}'
//	curl -s localhost:8080/v1/jobs/j1
//	curl -sN localhost:8080/v1/jobs/j1/events   # SSE progress stream
//	curl -s -X DELETE localhost:8080/v1/jobs/j1 # cancel a running job
//	curl -s -X POST localhost:8080/v1/graphs/<id>/warm -d '{"budgets":[50,50]}'
//	curl -s localhost:8080/v1/stats
//
// Cluster mode: welmaxd also runs as the routing tier in front of N
// backend daemons. Backends are ordinary welmaxd processes started with
// -node so their job ids carry a cluster-unique prefix; the router
// places each graph on one backend by rendezvous-hashing its
// content-addressed id, proxies graph- and job-scoped requests, fans
// multi-graph requests out, and re-routes graphs (shipping warm
// sketches) when a backend goes down or comes back:
//
//	welmaxd -addr :8081 -node b0 -data-dir /var/lib/welmaxd-b0 &
//	welmaxd -addr :8082 -node b1 -data-dir /var/lib/welmaxd-b1 &
//	welmaxd -addr :8080 -route 'b0=http://127.0.0.1:8081,b1=http://127.0.0.1:8082' &
//	curl -s -X POST localhost:8080/v1/graphs -d '{"network":"flixster"}'  # same API
//
// Backends accept raw graph and sketch imports — cluster-internal
// endpoints whose contents become authoritative for allocation results —
// so either keep backends on a private network or start every process
// with the same -cluster-token (or WELMAXD_CLUSTER_TOKEN): backends then
// reject import/sketch requests without the token, and the router
// attaches it to its own traffic (placement, rebalancing, sketch ships)
// while relaying — never substituting — the token on proxied client
// requests.
//
// Observability: every request carries an X-Welmax-Trace-Id (minted at
// the edge when the client sends none) that follows the job through
// logs, /v1/jobs records, and SSE events. Each traced request also
// records a span tree — parented, monotonic timestamps, per-span
// resource deltas — kept in a bounded in-memory ring with tail-sampled
// spill to checksummed segments under <data-dir>/traces (-trace-ring,
// -trace-mb, -trace-sample; slow, errored, and admission-queued traces
// are always kept). GET /v1/traces lists retained traces with
// route/graph/min_ms/since filters and cursor pagination, and
// GET /v1/traces/{id} returns one trace's spans; on the router both
// merge across shards, stitching the router's dispatch/proxy spans
// over the owning backend's execution spans (propagated via
// X-Welmax-Span-Id) into one cross-tier waterfall. GET /v1/metrics
// serves Prometheus-format latency histograms (merged across shards on
// the router); ?format=json adds per-bucket exemplars naming the
// slowest recent trace so a histogram spike resolves to a concrete
// waterfall. -pprof-addr exposes net/http/pprof on a separate
// listener; -slow-ms logs a structured line with per-stage timings for
// any job slower than the threshold; -telemetry=off disables all of
// it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"uicwelfare/internal/cluster"
	"uicwelfare/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 2, "allocation/estimation worker count")
		sketchWkrs = flag.Int("sketch-workers", 0, "RR-set growth parallelism inside each sketch build (0 = GOMAXPROCS, 1 = legacy serial)")
		queueCap   = flag.Int("queue", 64, "job queue capacity")
		cacheCap   = flag.Int("cache", 64, "sketch cache capacity (entries)")
		cacheMB    = flag.Int("cache-mb", 0, "sketch cache budget in MB of approximate resident cost (0 = entry bound only)")
		retention  = flag.Int("retain", 1024, "finished jobs kept queryable")
		allowPaths = flag.Bool("allow-paths", false, "let POST /v1/graphs load server-side edge-list or .wmg files")
		preload    = flag.String("preload", "", "built-in network to load at startup (optional)")
		dataDir    = flag.String("data-dir", "", "persistence directory: graphs, spilled sketches, and the job audit trail survive restarts (optional)")
		diskMB     = flag.Int("disk-mb", 0, "spilled-sketch disk budget in MB (0 = unbounded; needs -data-dir)")
		cacheTTL   = flag.Duration("cache-ttl", 0, "in-memory sketch lifetime (0 = forever); expired sketches rebuild on next use")
		batchWin   = flag.Duration("batch-window", 10*time.Millisecond, "gather window coalescing concurrent allocate/warm requests that differ only in budgets onto one dominating sketch build (0 disables batching)")
		admitMB    = flag.Int("admission-mb", 0, "cost-based admission control: reject allocate/warm requests (429, retryable) whose predicted sketch cost exceeds this many MB (0 disables)")
		admitQueue = flag.Int("admission-queue", 0, "queue-with-deadline admission: hold up to this many near-budget requests briefly instead of answering 429 (0 disables, needs -admission-mb)")
		admitWait  = flag.Duration("admission-wait", 2*time.Second, "how long a queued near-budget request waits for admission before the 429 (with -admission-queue)")
		admitSlack = flag.Float64("admission-slack", 1.5, "queue eligibility: only requests predicted within this factor of -admission-mb queue; further over rejects immediately")
		sweepCells = flag.Int("sweep-cell-workers", 0, "concurrent sweep cells per POST /v1/sweeps (0 = the -workers count)")
		nodeID     = flag.String("node", "", "cluster node id: job ids become <node>-j<seq> and /v1/healthz reports it (required behind a router)")
		route      = flag.String("route", "", "run as a cluster router over these backends: 'b0=http://host:port,b1=...' (ignores backend-only flags except -data-dir and -cluster-token)")
		probeEvery = flag.Duration("probe-interval", 2*time.Second, "router health-probe cadence (with -route)")
		proxyTO    = flag.Duration("proxy-timeout", 30*time.Second, "router per-backend request deadline, SSE excepted (with -route)")
		token      = flag.String("cluster-token", "", "shared cluster secret: backends require it on import/sketch endpoints, the router attaches it (or set WELMAXD_CLUSTER_TOKEN)")
		shardConc  = flag.Int("sweep-shard-concurrency", 2, "router: sweep cells kept in flight per backend (with -route)")
		telemetryF = flag.String("telemetry", "on", "request tracing and latency histograms: on or off")
		slowMS     = flag.Int("slow-ms", 1000, "log a structured slow-request line (with trace id and per-stage timings) for jobs at or above this many milliseconds (0 disables)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; empty disables)")
		jrnlRing   = flag.Int("journal-ring", 0, "flight-recorder ring capacity in events served by GET /v1/events (0 = default 4096)")
		jrnlMB     = flag.Int("journal-mb", 0, "flight-recorder on-disk journal budget in MB under <data-dir>/journal (0 = default 32; needs -data-dir to spill)")
		traceRing  = flag.Int("trace-ring", 0, "trace-store ring capacity in retained traces served by GET /v1/traces (0 = default 512)")
		traceMB    = flag.Int("trace-mb", 0, "trace-store on-disk budget in MB under <data-dir>/traces (0 = default 32; needs -data-dir to spill)")
		traceSmpl  = flag.Float64("trace-sample", 0.05, "tail-sampling keep probability for fast successful traces; slow, errored, and admission-queued traces are always kept")
	)
	flag.Parse()

	if *telemetryF != "on" && *telemetryF != "off" {
		fmt.Fprintf(os.Stderr, "welmaxd: -telemetry must be on or off, got %q\n", *telemetryF)
		os.Exit(1)
	}
	startPprof(*pprofAddr)

	clusterToken := *token
	if clusterToken == "" {
		clusterToken = os.Getenv("WELMAXD_CLUSTER_TOKEN")
	}

	if *route != "" {
		spillDir := ""
		if *dataDir != "" {
			spillDir = filepath.Join(*dataDir, "catalog")
		}
		backends, err := cluster.ParseBackends(*route)
		if err != nil {
			fmt.Fprintln(os.Stderr, "welmaxd:", err)
			os.Exit(1)
		}
		runRouter(*addr, cluster.Options{
			Backends:              backends,
			ProbeInterval:         *probeEvery,
			ProxyTimeout:          *proxyTO,
			AllowPathLoads:        *allowPaths,
			SpillDir:              spillDir,
			ClusterToken:          clusterToken,
			SweepShardConcurrency: *shardConc,
			JournalRing:           *jrnlRing,
			JournalMB:             *jrnlMB,
			TraceRing:             *traceRing,
			TraceMB:               *traceMB,
			TraceSample:           *traceSmpl,
		})
		return
	}

	svc, err := service.New(service.Options{
		Workers:          *workers,
		SketchWorkers:    *sketchWkrs,
		QueueCap:         *queueCap,
		CacheEntries:     *cacheCap,
		CacheMB:          *cacheMB,
		JobRetention:     *retention,
		AllowPathLoads:   *allowPaths,
		DataDir:          *dataDir,
		DiskMB:           *diskMB,
		CacheTTL:         *cacheTTL,
		BatchWindow:      *batchWin,
		AdmissionMB:      *admitMB,
		AdmissionQueue:   *admitQueue,
		AdmissionWait:    *admitWait,
		AdmissionSlack:   *admitSlack,
		SweepCellWorkers: *sweepCells,
		NodeID:           *nodeID,
		ClusterToken:     clusterToken,
		TelemetryOff:     *telemetryF == "off",
		SlowThreshold:    slowThreshold(*slowMS),
		JournalRing:      *jrnlRing,
		JournalMB:        *jrnlMB,
		TraceRing:        *traceRing,
		TraceMB:          *traceMB,
		TraceSample:      *traceSmpl,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "welmaxd:", err)
		os.Exit(1)
	}
	defer svc.Close()

	if *dataDir != "" {
		log.Printf("data dir %s: %d graphs re-indexed", *dataDir, svc.Registry().Len())
	}

	if *preload != "" {
		name, g, err := service.LoadGraph(&service.GraphRequest{Network: *preload})
		if err != nil {
			fmt.Fprintln(os.Stderr, "welmaxd:", err)
			os.Exit(1)
		}
		entry, existed, err := svc.RegisterGraph(name, g)
		if err != nil {
			fmt.Fprintln(os.Stderr, "welmaxd:", err)
			os.Exit(1)
		}
		verb := "preloaded"
		if existed {
			verb = "already resident:"
		}
		log.Printf("%s %s as %s (%d nodes, %d edges)",
			verb, name, entry.ID, g.N(), g.M())
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	if *nodeID != "" {
		log.Printf("welmaxd node %s listening on %s (%d workers)", *nodeID, *addr, *workers)
	} else {
		log.Printf("welmaxd listening on %s (%d workers)", *addr, *workers)
	}
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "welmaxd:", err)
		os.Exit(1)
	}
	<-done
}

// slowThreshold maps the -slow-ms flag onto service.Options.SlowThreshold
// (where 0 means "default" and negative disables).
func slowThreshold(ms int) time.Duration {
	if ms <= 0 {
		return -1
	}
	return time.Duration(ms) * time.Millisecond
}

// startPprof serves net/http/pprof on its own listener (and mux — the
// profiling surface never shares the API mux, so it can be bound to
// localhost while the API is public). No-op when addr is empty.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		log.Printf("pprof listening on %s", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("pprof server: %v", err)
		}
	}()
}

// runRouter serves the cluster routing tier (-route).
func runRouter(addr string, opts cluster.Options) {
	rt, err := cluster.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "welmaxd:", err)
		os.Exit(1)
	}
	rt.Start()
	defer rt.Close()

	srv := &http.Server{Addr: addr, Handler: rt.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("router shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	log.Printf("welmaxd router listening on %s (%d backends)", addr, len(opts.Backends))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "welmaxd:", err)
		os.Exit(1)
	}
	<-done
}
