package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobState is the lifecycle of an asynchronous job.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is one asynchronous unit of work. Fields are guarded by the
// store's mutex; handlers read them through Snapshot.
type Job struct {
	ID       string
	Kind     string // "allocate" | "estimate"
	State    JobState
	Created  time.Time
	Started  time.Time
	Finished time.Time
	Request  any
	Result   any
	Err      string
}

// JobView is the wire form of a job returned by GET /v1/jobs/{id}.
type JobView struct {
	ID      string   `json:"id"`
	Kind    string   `json:"kind"`
	State   JobState `json:"state"`
	Created string   `json:"created"`
	// ElapsedMS is running time so far (running) or total (done/failed).
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Request   any    `json:"request,omitempty"`
	Result    any    `json:"result,omitempty"`
	Error     string `json:"error,omitempty"`
}

func (j *Job) view() JobView {
	v := JobView{
		ID:      j.ID,
		Kind:    j.Kind,
		State:   j.State,
		Created: j.Created.UTC().Format(time.RFC3339Nano),
		Request: j.Request,
		Result:  j.Result,
		Error:   j.Err,
	}
	switch j.State {
	case JobRunning:
		v.ElapsedMS = time.Since(j.Started).Milliseconds()
	case JobDone, JobFailed:
		v.ElapsedMS = j.Finished.Sub(j.Started).Milliseconds()
	}
	return v
}

// JobStore tracks jobs by id and counts them by state. Finished jobs
// are retained up to a bound; beyond it the oldest done/failed jobs are
// dropped so a long-running daemon's memory stays flat. Queued and
// running jobs are never dropped.
type JobStore struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	ids    []string // insertion order, for listing
	seq    int
	retain int
}

// NewJobStore returns an empty store keeping at most retain finished
// jobs (default 1024 if retain <= 0).
func NewJobStore(retain int) *JobStore {
	if retain <= 0 {
		retain = 1024
	}
	return &JobStore{jobs: map[string]*Job{}, retain: retain}
}

// Create registers a queued job and returns it.
func (s *JobStore) Create(kind string, req any) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("j%d", s.seq),
		Kind:    kind,
		State:   JobQueued,
		Created: time.Now(),
		Request: req,
	}
	s.jobs[j.ID] = j
	s.ids = append(s.ids, j.ID)
	return j
}

// Remove drops a job that never ran (e.g. the queue was full).
func (s *JobStore) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return
	}
	delete(s.jobs, id)
	for i, x := range s.ids {
		if x == id {
			s.ids = append(s.ids[:i], s.ids[i+1:]...)
			break
		}
	}
}

// Start marks the job running.
func (s *JobStore) Start(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil {
		j.State = JobRunning
		j.Started = time.Now()
	}
}

// Finish marks the job done (err == nil) or failed.
func (s *JobStore) Finish(id string, result any, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return
	}
	j.Finished = time.Now()
	if err != nil {
		j.State = JobFailed
		j.Err = err.Error()
	} else {
		j.State = JobDone
		j.Result = result
	}
	s.trimLocked()
}

// trimLocked drops the oldest finished jobs beyond the retention bound.
// Caller holds s.mu.
func (s *JobStore) trimLocked() {
	finished := 0
	for _, j := range s.jobs {
		if j.State == JobDone || j.State == JobFailed {
			finished++
		}
	}
	drop := finished - s.retain
	if drop <= 0 {
		return
	}
	keep := s.ids[:0]
	for _, id := range s.ids {
		j := s.jobs[id]
		if drop > 0 && (j.State == JobDone || j.State == JobFailed) {
			delete(s.jobs, id)
			drop--
			continue
		}
		keep = append(keep, id)
	}
	s.ids = keep
}

// Snapshot returns the wire view of a job.
func (s *JobStore) Snapshot(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// List returns the wire view of every job in insertion order.
func (s *JobStore) List() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.ids))
	for _, id := range s.ids {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// CountByState tallies jobs per lifecycle state.
func (s *JobStore) CountByState() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[JobState]int{}
	for _, j := range s.jobs {
		out[j.State]++
	}
	return out
}

// Pool is a bounded worker pool: a fixed number of goroutines draining a
// bounded queue. Submission never blocks — a full queue is reported to
// the caller (the HTTP layer answers 503) instead of stalling the
// accept loop.
type Pool struct {
	mu     sync.Mutex
	queue  chan func()
	wg     sync.WaitGroup
	busy   atomic.Int32
	closed bool
	size   int
}

// NewPool starts `workers` goroutines with a queue of capacity queueCap.
func NewPool(workers, queueCap int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	p := &Pool{queue: make(chan func(), queueCap), size: workers}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.queue {
				p.busy.Add(1)
				fn()
				p.busy.Add(-1)
			}
		}()
	}
	return p
}

// Submit enqueues fn; it reports false when the queue is full or the
// pool is closed.
func (p *Pool) Submit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- fn:
		return true
	default:
		return false
	}
}

// Close stops accepting work, drains the queue, and waits for the
// workers to exit.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.size }

// Busy returns how many workers are executing a job right now.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// QueueDepth returns the number of queued-but-unstarted submissions.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// QueueCap returns the queue capacity.
func (p *Pool) QueueCap() int { return cap(p.queue) }
