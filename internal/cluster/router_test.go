package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"
	"time"

	"uicwelfare/internal/cluster"
	"uicwelfare/internal/service"
)

// retryableBody decodes the router's transient-failure error shape.
type retryableBody struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable"`
}

// TestOwnerDownRetryableThenReroute kills a graph's owner and checks the
// two phases a client sees: before the router notices, graph-scoped
// requests fail with a 502 whose body says retryable; after the next
// probe round, the graph has been re-shipped and the same request
// succeeds.
func TestOwnerDownRetryableThenReroute(t *testing.T) {
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", service.Options{}),
		startBackendAt(t, "b1", "127.0.0.1:0", service.Options{}),
	}
	rt, c := newCluster(t, backends, cluster.Options{ProbeInterval: time.Hour, ProxyTimeout: 5 * time.Second})
	defer rt.Close()
	rt.Sync(syncCtx())

	info := c.registerLine(4)
	var owner, survivor *backend
	for _, b := range backends {
		if _, ok := b.svc.Registry().Get(info.ID); ok {
			owner = b
		} else {
			survivor = b
		}
	}
	if owner == nil || survivor == nil {
		t.Fatal("placement did not yield one owner and one survivor")
	}
	owner.kill()

	// Phase 1: stale membership — the proxy attempt fails and the error
	// body marks the failure retryable.
	alloc := service.AllocateRequest{GraphID: info.ID, Budgets: []int{2, 2}}
	status, raw := c.do("POST", "/v1/allocate", alloc)
	if status != http.StatusBadGateway {
		t.Fatalf("allocate with owner down: status %d: %s", status, raw)
	}
	var body retryableBody
	if err := json.Unmarshal(raw, &body); err != nil || !body.Retryable || body.Error == "" {
		t.Fatalf("error body %s not retryable", raw)
	}

	// Phase 2: the probe round notices, rebalance re-ships, the retry
	// lands on the survivor.
	rt.Sync(syncCtx())
	view := c.waitJob(c.submit("/v1/allocate", alloc))
	if view.State != service.JobDone {
		t.Fatalf("rerouted allocate failed: %s", view.Error)
	}
	if _, ok := survivor.svc.Registry().Get(info.ID); !ok {
		t.Error("graph not resident on the survivor")
	}

	// Deleting through the router tombstones the id: later sync passes
	// must not re-adopt or re-ship the deleted graph from anywhere.
	if status, raw := c.do("DELETE", "/v1/graphs/"+info.ID, nil); status != http.StatusOK {
		t.Fatalf("delete through router: status %d: %s", status, raw)
	}
	rt.Sync(syncCtx())
	rt.Sync(syncCtx())
	var merged struct {
		Graphs []service.GraphInfo `json:"graphs"`
	}
	c.doJSON("GET", "/v1/graphs", nil, &merged, http.StatusOK)
	if len(merged.Graphs) != 0 {
		t.Errorf("deleted graph resurrected: %+v", merged.Graphs)
	}
	if _, ok := survivor.svc.Registry().Get(info.ID); ok {
		t.Error("deleted graph still resident on the survivor")
	}

	// Job routes to the dead backend are retryable too; malformed and
	// unknown-node ids are plain 404s.
	if status, raw := c.do("GET", "/v1/jobs/"+owner.name+"-j1", nil); status != http.StatusBadGateway {
		t.Errorf("job on dead backend: status %d: %s", status, raw)
	}
	if status, _ := c.do("GET", "/v1/jobs/j1", nil); status != http.StatusNotFound {
		t.Errorf("unprefixed job id: status %d, want 404", status)
	}
	if status, _ := c.do("GET", "/v1/jobs/zz-j1", nil); status != http.StatusNotFound {
		t.Errorf("unknown node: status %d, want 404", status)
	}
}

// slowBackend is a stub that answers health probes as a well-behaved
// node but stalls every other route — the pathological slow shard.
func slowBackend(t *testing.T, name string, delay time.Duration) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(service.HealthzResponse{Status: "ok", Node: name})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
		_, _ = fmt.Fprint(w, `{"graphs":[],"jobs":[]}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestFanoutRespectsDeadlineWithSlowBackend fans out across one healthy
// backend and one stalled one: the merge must return within the proxy
// deadline, carrying the healthy backend's data and reporting the slow
// one as a partial failure.
func TestFanoutRespectsDeadlineWithSlowBackend(t *testing.T) {
	real := startBackendAt(t, "b0", "127.0.0.1:0", service.Options{})
	slow := slowBackend(t, "slow", 10*time.Second)

	rt, err := cluster.New(cluster.Options{
		Backends: []cluster.Backend{
			{Name: "b0", URL: real.url()},
			{Name: "slow", URL: slow.URL},
		},
		ProbeInterval: time.Hour,
		ProxyTimeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	c := &client{t: t, base: front.URL}
	rt.Sync(syncCtx()) // both probe healthy; adopt tolerates the stall

	// Register directly on the healthy backend: routing through the
	// router could pick the stub as HRW owner.
	direct := &client{t: t, base: real.url()}
	var info service.GraphInfo
	direct.doJSON("POST", "/v1/graphs", service.GraphRequest{
		Name: "tri", Edges: lineEdges(4), KeepProbs: true,
	}, &info, http.StatusCreated)

	start := time.Now()
	var list struct {
		Graphs  []service.GraphInfo `json:"graphs"`
		Partial bool                `json:"partial"`
		Errors  map[string]string   `json:"errors"`
	}
	c.doJSON("GET", "/v1/graphs", nil, &list, http.StatusOK)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fan-out took %v; the slow backend was allowed to stall the merge", elapsed)
	}
	if len(list.Graphs) != 1 || list.Graphs[0].ID != info.ID {
		t.Errorf("merged graphs = %+v, want the healthy backend's graph", list.Graphs)
	}
	if !list.Partial || list.Errors["slow"] == "" {
		t.Errorf("partial=%v errors=%v, want the slow backend reported", list.Partial, list.Errors)
	}

	// The stats fan-out degrades the same way.
	var stats cluster.RouterStats
	start = time.Now()
	c.doJSON("GET", "/v1/stats", nil, &stats, http.StatusOK)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stats fan-out took %v", elapsed)
	}
	if _, ok := stats.Backends["b0"]; !ok {
		t.Error("healthy backend missing from stats")
	}
	if stats.Errors["slow"] == "" {
		t.Error("slow backend not reported in stats errors")
	}
}

// TestAdoptsDirectlyRegisteredGraph registers a graph on a backend
// behind the router's back (the backends serve the full single-node
// API): the next sync must adopt it — fetching its .wmg so it is
// re-shippable — and place it on its HRW owner so graph-scoped routes
// through the router work instead of 404ing on the wrong backend.
func TestAdoptsDirectlyRegisteredGraph(t *testing.T) {
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", service.Options{}),
		startBackendAt(t, "b1", "127.0.0.1:0", service.Options{}),
	}
	rt, c := newCluster(t, backends, cluster.Options{ProbeInterval: time.Hour, ProxyTimeout: 5 * time.Second})
	defer rt.Close()
	rt.Sync(syncCtx())

	// Register on whichever backend HRW would NOT pick, to force a move.
	edges := lineEdges(7)
	direct := &client{t: t, base: backends[0].url()}
	var info service.GraphInfo
	direct.doJSON("POST", "/v1/graphs", service.GraphRequest{Name: "direct", Edges: edges, KeepProbs: true}, &info, http.StatusCreated)
	want, _ := cluster.Owner([]string{"b0", "b1"}, info.ID)
	if want != "b0" {
		// Already on the non-owner; otherwise move it to b1 and restart
		// the scenario from there.
		c.doJSON("GET", "/v1/graphs", nil, nil, http.StatusOK) // flags drift
	}

	rt.Sync(syncCtx()) // adopt + rebalance onto the HRW owner
	var got service.GraphInfo
	c.doJSON("GET", "/v1/graphs/"+info.ID, nil, &got, http.StatusOK)
	if got.ID != info.ID {
		t.Fatalf("graph-scoped route after adoption = %+v", got)
	}
	owner := ""
	for _, b := range backends {
		if _, ok := b.svc.Registry().Get(info.ID); ok {
			if owner != "" {
				t.Fatal("graph resident on both backends after adoption")
			}
			owner = b.name
		}
	}
	if owner != want {
		t.Errorf("graph on %s after adoption, HRW owner is %s", owner, want)
	}
	view := c.waitJob(c.submit("/v1/allocate", service.AllocateRequest{GraphID: info.ID, Budgets: []int{2, 2}}))
	if view.State != service.JobDone {
		t.Fatalf("allocate on adopted graph failed: %s", view.Error)
	}
}

// TestNodeIdentityMismatchIsUnhealthy wires the topology to a backend
// announcing a different node id: the probe must mark it down with an
// explanatory error rather than route jobs to the wrong shard.
func TestNodeIdentityMismatchIsUnhealthy(t *testing.T) {
	b := startBackendAt(t, "actual", "127.0.0.1:0", service.Options{})
	rt, err := cluster.New(cluster.Options{
		Backends:      []cluster.Backend{{Name: "expected", URL: b.url()}},
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Sync(syncCtx())
	snap := rt.Stats(syncCtx()).Cluster.Backends
	if len(snap) != 1 || snap[0].Healthy {
		t.Fatalf("mismatched backend counted healthy: %+v", snap)
	}
	if snap[0].Error == "" {
		t.Error("no explanatory error for the identity mismatch")
	}
}

// TestStreamSurvivesMembershipChange opens a proxied SSE stream, then
// kills and revives a different backend (forcing a probe transition and
// a rebalance pass) while the stream is up: the in-flight stream must
// still deliver its terminal event.
func TestStreamSurvivesMembershipChange(t *testing.T) {
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", service.Options{}),
		startBackendAt(t, "b1", "127.0.0.1:0", service.Options{}),
	}
	rt, c := newCluster(t, backends, cluster.Options{ProbeInterval: time.Hour, ProxyTimeout: 10 * time.Second})
	defer rt.Close()
	rt.Sync(syncCtx())

	info := c.registerLine(5)
	var owner, other *backend
	for _, b := range backends {
		if _, ok := b.svc.Registry().Get(info.ID); ok {
			owner = b
		} else {
			other = b
		}
	}
	// A Monte-Carlo estimate long enough to still be streaming while the
	// other backend bounces (harmless if it finishes early — the stream
	// then just replays to its terminal event).
	jobID := c.submit("/v1/estimate", service.EstimateRequest{
		GraphID:    info.ID,
		Allocation: service.AllocationDTO{Seeds: [][]int64{{0}, {1}}},
		Runs:       2_000_000,
	})

	done := make(chan []string, 1)
	go func() { done <- c.streamEvents(jobID) }()

	other.kill()
	rt.Sync(syncCtx()) // membership change: down
	other = other.restart(t)
	rt.Sync(syncCtx()) // membership change: up again, rebalance runs

	select {
	case events := <-done:
		if len(events) == 0 || events[len(events)-1] != "done" {
			t.Fatalf("stream events = %v, want terminal done", events)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("stream never terminated")
	}
	if owner == nil {
		t.Fatal("no owner found")
	}
}

// TestClusterTokenEndToEnd runs a 2-backend cluster where every process
// shares a cluster token: the router's imports and sketch ships must
// carry it (registration and kill-reroute work end to end), while a
// tokenless client talking to a backend directly is refused.
func TestClusterTokenEndToEnd(t *testing.T) {
	const token = "sesame"
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", service.Options{ClusterToken: token}),
		startBackendAt(t, "b1", "127.0.0.1:0", service.Options{ClusterToken: token}),
	}
	rt, c := newCluster(t, backends, cluster.Options{
		ProbeInterval: time.Hour,
		ProxyTimeout:  5 * time.Second,
		ClusterToken:  token,
	})
	defer rt.Close()
	rt.Sync(syncCtx())

	info := c.registerLine(6) // router → backend /v1/graphs/import carries the token
	var owner, survivor *backend
	for _, b := range backends {
		if _, ok := b.svc.Registry().Get(info.ID); ok {
			owner = b
		} else {
			survivor = b
		}
	}
	if owner == nil || survivor == nil {
		t.Fatal("placement did not yield one owner and one survivor")
	}

	// A tokenless caller hitting the backend directly is refused — and so
	// is one going through the router, which must not lend its own
	// credential to client-originated requests.
	direct := &client{t: t, base: owner.url()}
	if status, _ := direct.do("POST", "/v1/graphs/"+info.ID+"/sketches", []byte("x")); status != http.StatusForbidden {
		t.Errorf("tokenless direct sketch import: status %d, want 403", status)
	}
	if status, _ := c.do("POST", "/v1/graphs/"+info.ID+"/sketches", []byte("x")); status != http.StatusForbidden {
		t.Errorf("tokenless sketch import through router: status %d, want 403", status)
	}

	// Kill the owner: the re-ship (import on the survivor) needs the
	// token too, and the rerouted allocate must succeed.
	owner.kill()
	rt.Sync(syncCtx())
	view := c.waitJob(c.submit("/v1/allocate", service.AllocateRequest{GraphID: info.ID, Budgets: []int{2, 2}}))
	if view.State != service.JobDone {
		t.Fatalf("rerouted allocate failed: %s", view.Error)
	}
	if _, ok := survivor.svc.Registry().Get(info.ID); !ok {
		t.Error("graph not resident on the survivor")
	}
}

// TestProxyForwardsRequestHeaders checks that end-to-end request headers
// (Last-Event-ID — an SSE client resuming through the router — and
// Accept) reach the backend, while hop-by-hop headers do not.
func TestProxyForwardsRequestHeaders(t *testing.T) {
	var got http.Header
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(service.HealthzResponse{Status: "ok", Node: "b0"})
	})
	mux.HandleFunc("GET /v1/algorithms", func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Clone()
		_, _ = fmt.Fprint(w, `{"algorithms":[]}`)
	})
	mux.HandleFunc("GET /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		_, _ = fmt.Fprint(w, `{"graphs":[]}`)
	})
	stub := httptest.NewServer(mux)
	t.Cleanup(stub.Close)

	rt, err := cluster.New(cluster.Options{
		Backends:      []cluster.Backend{{Name: "b0", URL: stub.URL}},
		ProbeInterval: time.Hour,
		ClusterToken:  "sesame",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	rt.Sync(syncCtx())

	req, err := http.NewRequest("GET", front.URL+"/v1/algorithms", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "41")
	req.Header.Set("Accept", "text/event-stream")
	// The client's own token header is relayed verbatim — the router must
	// never stamp ITS credential onto a client-originated request (that
	// would let anonymous callers reach token-gated backend endpoints
	// through the proxy, a confused deputy).
	req.Header.Set(service.ClusterTokenHeader, "client-supplied")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied request: status %d", resp.StatusCode)
	}
	if v := got.Get("Last-Event-ID"); v != "41" {
		t.Errorf("Last-Event-ID = %q, want 41", v)
	}
	if v := got.Get("Accept"); v != "text/event-stream" {
		t.Errorf("Accept = %q", v)
	}
	if v := got.Get(service.ClusterTokenHeader); v != "client-supplied" {
		t.Errorf("cluster token reaching backend = %q, want the client's own relayed", v)
	}
	if v := got.Get("Connection"); v != "" {
		t.Errorf("hop-by-hop Connection header forwarded: %q", v)
	}
}

// TestConcurrentProxyDuringRebalance hammers graph-scoped routes while
// sync passes rewrite ownership — the -race regression for the unlocked
// rec.owner reads the proxy path used to do.
func TestConcurrentProxyDuringRebalance(t *testing.T) {
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", service.Options{}),
		startBackendAt(t, "b1", "127.0.0.1:0", service.Options{}),
	}
	rt, c := newCluster(t, backends, cluster.Options{ProbeInterval: time.Hour, ProxyTimeout: 5 * time.Second})
	defer rt.Close()
	rt.Sync(syncCtx())

	infos := []service.GraphInfo{c.registerLine(4), c.registerLine(5), c.registerLine(6)}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := infos[i%len(infos)].ID
				c.do("GET", "/v1/graphs/"+id, nil)
				c.do("POST", "/v1/graphs", service.GraphRequest{
					Name: "line4", Edges: lineEdges(4), KeepProbs: true,
				})
			}
		}(i)
	}
	// Kill and revive a backend so every Sync rewrites ownership while
	// the proxy goroutines read it.
	for round := 0; round < 3; round++ {
		backends[0].kill()
		rt.Sync(syncCtx())
		backends[0] = backends[0].restart(t)
		rt.Sync(syncCtx())
	}
	close(stop)
	wg.Wait()
}

// TestCorruptSpillRecoversFromLiveHolder corrupts the router's spilled
// .wmg between two moves: the next move must detect the backend's 400 on
// the corrupt bytes, drop the spill, re-fetch the export from the live
// holder, and complete — not retry the same bad file forever.
func TestCorruptSpillRecoversFromLiveHolder(t *testing.T) {
	spill := t.TempDir()
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", service.Options{}),
		startBackendAt(t, "b1", "127.0.0.1:0", service.Options{}),
		startBackendAt(t, "b2", "127.0.0.1:0", service.Options{}),
	}
	rt, c := newCluster(t, backends, cluster.Options{
		ProbeInterval: time.Hour,
		ProxyTimeout:  5 * time.Second,
		SpillDir:      spill,
	})
	defer rt.Close()
	rt.Sync(syncCtx())

	info := c.registerLine(6)
	holder := func() *backend {
		for _, b := range backends {
			if b.closed {
				continue
			}
			if _, ok := b.svc.Registry().Get(info.ID); ok {
				return b
			}
		}
		return nil
	}
	first := holder()
	if first == nil {
		t.Fatal("graph resident nowhere")
	}

	// Kill the owner: the graph moves via the (intact) spill.
	first.kill()
	rt.Sync(syncCtx())
	second := holder()
	if second == nil {
		t.Fatal("graph not re-routed after owner kill")
	}

	// Corrupt the spill, then revive the original owner: HRW moves the
	// graph back, which must survive the corrupt spill by re-fetching
	// from the live holder.
	path := filepath.Join(spill, info.ID+".wmg")
	if err := os.WriteFile(path, []byte("garbage, not a wmg frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	revived := first.restart(t)
	backends[slices.Index(backends, first)] = revived
	rt.Sync(syncCtx())

	if _, ok := revived.svc.Registry().Get(info.ID); !ok {
		t.Fatal("graph did not move back to the revived HRW owner")
	}
	view := c.waitJob(c.submit("/v1/allocate", service.AllocateRequest{GraphID: info.ID, Budgets: []int{2, 2}}))
	if view.State != service.JobDone {
		t.Fatalf("allocate after corrupt-spill recovery failed: %s", view.Error)
	}
	if raw, err := os.ReadFile(path); err != nil || bytes.HasPrefix(raw, []byte("garbage")) {
		t.Errorf("spill not repaired after recovery (err %v)", err)
	}
}
