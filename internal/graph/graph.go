// Package graph provides the social-network substrate: a compact
// compressed-sparse-row directed graph with per-edge influence
// probabilities, loaders for edge-list files, synthetic generators standing
// in for the paper's real datasets, and structural utilities (SCC
// extraction, BFS-induced subgraphs, degree statistics).
package graph

import "fmt"

// NodeID identifies a node; nodes are numbered 0..N-1.
type NodeID = int32

// Graph is an immutable directed graph in CSR form with both out- and
// in-adjacency, plus an influence probability per edge. Build one with a
// Builder or a generator. An undirected social network is represented as a
// symmetric directed graph (each undirected edge stored in both
// directions), matching how the IC model treats undirected inputs.
type Graph struct {
	n int
	m int // number of directed edges stored

	outIndex []int64
	outTo    []NodeID
	outProb  []float32

	inIndex []int64
	inFrom  []NodeID
	inProb  []float32

	// inEdgePos[j] is the position in the out-edge arrays of the j-th
	// in-edge, so edge state (tested/live) can be shared between forward
	// and reverse traversals.
	inEdgePos []int64
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int { return g.m }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v NodeID) int {
	return int(g.outIndex[v+1] - g.outIndex[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inIndex[v+1] - g.inIndex[v])
}

// OutEdges returns the targets and probabilities of v's out-edges. The
// slices alias the graph's internal storage and must not be modified. The
// edge (v, targets[i]) has global edge position OutEdgeBase(v)+i.
func (g *Graph) OutEdges(v NodeID) (targets []NodeID, probs []float32) {
	lo, hi := g.outIndex[v], g.outIndex[v+1]
	return g.outTo[lo:hi], g.outProb[lo:hi]
}

// OutEdgeBase returns the global position of v's first out-edge, used to
// index per-edge state arrays.
func (g *Graph) OutEdgeBase(v NodeID) int64 { return g.outIndex[v] }

// InEdges returns the sources and probabilities of v's in-edges. The
// slices alias internal storage and must not be modified.
func (g *Graph) InEdges(v NodeID) (sources []NodeID, probs []float32) {
	lo, hi := g.inIndex[v], g.inIndex[v+1]
	return g.inFrom[lo:hi], g.inProb[lo:hi]
}

// InEdgePositions returns, for each in-edge of v, the global out-edge
// position of the same edge.
func (g *Graph) InEdgePositions(v NodeID) []int64 {
	lo, hi := g.inIndex[v], g.inIndex[v+1]
	return g.inEdgePos[lo:hi]
}

// Prob returns the influence probability of edge (u, v), and whether the
// edge exists. It is a linear scan of u's out-list and intended for tests
// and small graphs.
func (g *Graph) Prob(u, v NodeID) (float64, bool) {
	ts, ps := g.OutEdges(u)
	for i, t := range ts {
		if t == v {
			return float64(ps[i]), true
		}
	}
	return 0, false
}

// AvgDegree returns the average out-degree m/n.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d avgdeg=%.2f}", g.n, g.m, g.AvgDegree())
}

// WeightedCascade returns a copy of g with every edge probability reset to
// the weighted-cascade convention p(u,v) = 1/indeg(v) used throughout the
// paper's experiments.
func (g *Graph) WeightedCascade() *Graph {
	ng := *g
	ng.outProb = make([]float32, len(g.outProb))
	ng.inProb = make([]float32, len(g.inProb))
	for v := NodeID(0); int(v) < g.n; v++ {
		d := g.InDegree(v)
		if d == 0 {
			continue
		}
		p := float32(1.0 / float64(d))
		lo, hi := g.inIndex[v], g.inIndex[v+1]
		for j := lo; j < hi; j++ {
			ng.inProb[j] = p
			ng.outProb[g.inEdgePos[j]] = p
		}
	}
	return &ng
}

// UniformProb returns a copy of g with every edge probability set to p,
// used by the scalability experiment's fixed-probability variant.
func (g *Graph) UniformProb(p float64) *Graph {
	ng := *g
	ng.outProb = make([]float32, len(g.outProb))
	ng.inProb = make([]float32, len(g.inProb))
	fp := float32(p)
	for i := range ng.outProb {
		ng.outProb[i] = fp
	}
	for i := range ng.inProb {
		ng.inProb[i] = fp
	}
	return &ng
}
