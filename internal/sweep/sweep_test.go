package sweep

import (
	"net/url"
	"testing"

	"uicwelfare/internal/store"
)

func TestExpandDefaultsAndOrder(t *testing.T) {
	s := &Spec{
		GraphIDs: []string{"g1", "g2"},
		Budgets:  [][]int{{25, 25}, {50, 50}},
	}
	cells, err := Expand(s)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	// Defaults collapse every unset axis to one value: 2 graphs × 1
	// config × 1 eps × 2 budgets × 1 algo × 1 cascade × 1 repeat.
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	for i, c := range cells {
		if c.Index != i || c.ID != "c"+string(rune('0'+i)) {
			t.Errorf("cell %d: index %d id %s", i, c.Index, c.ID)
		}
		if c.Config != "config1" || c.Cascade != "ic" || c.Seed != 1 || c.Algo != "" {
			t.Errorf("cell %d defaults not applied: %+v", i, c)
		}
	}
	// Graphs are the outermost axis: the first half of the grid is g1.
	if cells[0].GraphID != "g1" || cells[1].GraphID != "g1" || cells[2].GraphID != "g2" {
		t.Errorf("unexpected axis nesting: %+v", cells)
	}

	// Expansion is deterministic: the same spec yields the same cells.
	again, err := Expand(&Spec{GraphIDs: []string{"g1", "g2"}, Budgets: [][]int{{25, 25}, {50, 50}}})
	if err != nil {
		t.Fatalf("re-expand: %v", err)
	}
	for i := range cells {
		if cells[i].ID != again[i].ID || cells[i].GraphID != again[i].GraphID {
			t.Errorf("expansion not deterministic at %d", i)
		}
	}
}

func TestExpandRepeatsVarySeed(t *testing.T) {
	s := &Spec{GraphIDs: []string{"g"}, Budgets: [][]int{{10}}, Repeats: 3, Seed: 7}
	cells, err := Expand(s)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	for i, c := range cells {
		if c.Rep != i || c.Seed != 7+uint64(i) {
			t.Errorf("repeat %d: rep %d seed %d", i, c.Rep, c.Seed)
		}
	}
}

func TestExpandRejectsBadShapes(t *testing.T) {
	many := make([]string, MaxAxis+1)
	for i := range many {
		many[i] = "g"
	}
	cases := []struct {
		name string
		spec Spec
	}{
		{"no graphs", Spec{Budgets: [][]int{{1}}}},
		{"no budgets", Spec{GraphIDs: []string{"g"}}},
		{"empty budget vector", Spec{GraphIDs: []string{"g"}, Budgets: [][]int{{}}}},
		{"axis too long", Spec{GraphIDs: many, Budgets: [][]int{{1}}}},
		{"too many repeats", Spec{GraphIDs: []string{"g"}, Budgets: [][]int{{1}}, Repeats: MaxRepeats + 1}},
		{"grid too large", Spec{
			GraphIDs: make32(), Budgets: [][]int{{1}, {2}}, Configs: make32(), Repeats: 2,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Expand(&tc.spec); err == nil {
				t.Error("expand accepted an invalid spec")
			}
		})
	}
}

func make32() []string {
	out := make([]string, MaxAxis)
	for i := range out {
		out[i] = "x"
	}
	return out
}

func queryFixture() *store.SweepResult {
	return &store.SweepResult{
		SweepID: "n0-j1",
		Cells: []store.SweepCell{
			{Index: 0, CellID: "c0", GraphID: "g1", Algo: "bundleGRD", Config: "config1",
				Cascade: "ic", Budgets: []int{25}, State: "done", HasWelfare: true, WelfareMean: 100},
			{Index: 1, CellID: "c1", GraphID: "g1", Algo: "bundleGRD", Config: "config1",
				Cascade: "ic", Budgets: []int{50}, State: "done", HasWelfare: true, WelfareMean: 140},
			{Index: 2, CellID: "c2", GraphID: "g2", Algo: "item-disj", Config: "config1",
				Cascade: "ic", Budgets: []int{25}, State: "failed", Error: "boom"},
			{Index: 3, CellID: "c3", GraphID: "g2", Algo: "bundleGRD", Config: "config3",
				Cascade: "ic", Budgets: []int{25}, State: "done", HasWelfare: true, WelfareMean: 80},
		},
	}
}

func TestQueryFilterAndCounts(t *testing.T) {
	res := queryFixture()
	out, err := Query(res, "sdeadbeef", url.Values{"graph": {"g1"}})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if out.ArtifactID != "sdeadbeef" {
		t.Errorf("artifact id %s", out.ArtifactID)
	}
	if len(out.Cells) != 2 || out.Counts["done"] != 2 || out.Counts["failed"] != 0 {
		t.Errorf("filter g1: %d cells, counts %v", len(out.Cells), out.Counts)
	}
	out, err = Query(res, "s0", url.Values{"state": {"failed"}})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(out.Cells) != 1 || out.Cells[0].CellID != "c2" {
		t.Errorf("filter failed: %+v", out.Cells)
	}
	// ?cells=false keeps the counts but drops the row listing.
	out, err = Query(res, "s0", url.Values{"cells": {"false"}})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if out.Cells != nil || out.Counts["done"] != 3 {
		t.Errorf("cells=false: cells %v counts %v", out.Cells, out.Counts)
	}
}

func TestQueryGroupBy(t *testing.T) {
	out, err := Query(queryFixture(), "s0", url.Values{"group_by": {"graph,algo"}})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(out.Groups) != 3 {
		t.Fatalf("got %d groups, want 3: %+v", len(out.Groups), out.Groups)
	}
	byKey := map[string]GroupAggregate{}
	for _, g := range out.Groups {
		byKey[g.Key["graph"]+"/"+g.Key["algo"]] = g
	}
	g1 := byKey["g1/bundleGRD"]
	if g1.Cells != 2 || g1.Estimated != 2 {
		t.Errorf("g1/bundleGRD: %+v", g1)
	}
	if g1.WelfareMean != 120 || g1.WelfareMin != 100 || g1.WelfareMax != 140 {
		t.Errorf("g1/bundleGRD aggregates: %+v", g1)
	}
	// A failed cell contributes to Cells but not the welfare aggregates.
	g2d := byKey["g2/item-disj"]
	if g2d.Cells != 1 || g2d.Estimated != 0 || g2d.WelfareMean != 0 {
		t.Errorf("g2/item-disj: %+v", g2d)
	}

	if _, err := Query(queryFixture(), "s0", url.Values{"group_by": {"nope"}}); err == nil {
		t.Error("unknown group_by dimension accepted")
	}
}
