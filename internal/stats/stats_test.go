package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGZeroSeedIsValid(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Float64())
	}
	if math.Abs(s.Mean()-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", s.Mean())
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(5)
	const n, runs = 10, 100000
	counts := make([]int, n)
	for i := 0; i < runs; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		p := float64(c) / runs
		if math.Abs(p-0.1) > 0.01 {
			t.Errorf("bucket %d frequency %v, want ~0.1", i, p)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestBoolEdgeCases(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := NewRNG(9)
	const p, runs = 0.3, 100000
	hits := 0
	for i := 0; i < runs; i++ {
		if r.Bool(p) {
			hits++
		}
	}
	freq := float64(hits) / runs
	if math.Abs(freq-p) > 0.01 {
		t.Errorf("Bool(%v) frequency %v", p, freq)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.NormFloat64())
	}
	if math.Abs(s.Mean()) > 0.02 {
		t.Errorf("normal mean = %v", s.Mean())
	}
	if math.Abs(s.Variance()-1) > 0.03 {
		t.Errorf("normal variance = %v", s.Variance())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(23)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams overlap: %d identical", same)
	}
}

func TestGaussianSampleMoments(t *testing.T) {
	g := Gaussian{Mu: 3, Sigma: 2}
	r := NewRNG(29)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(g.Sample(r))
	}
	if math.Abs(s.Mean()-3) > 0.05 {
		t.Errorf("mean = %v", s.Mean())
	}
	if math.Abs(s.Variance()-4) > 0.15 {
		t.Errorf("variance = %v", s.Variance())
	}
}

func TestGaussianCDF(t *testing.T) {
	g := Gaussian{Mu: 0, Sigma: 1}
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
	}
	for _, c := range cases {
		if got := g.CDF(c.x); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestGaussianCDFDegenerate(t *testing.T) {
	g := Gaussian{Mu: 2, Sigma: 0}
	if g.CDF(1.9) != 0 || g.CDF(2.1) != 1 {
		t.Error("degenerate CDF wrong")
	}
}

func TestNoiseIsZeroMean(t *testing.T) {
	n := Noise(2.5)
	if n.Mean() != 0 || n.Variance() != 6.25 {
		t.Errorf("Noise(2.5) = %+v", n)
	}
}

func TestUniformMoments(t *testing.T) {
	u := Uniform{Lo: -1, Hi: 3}
	if u.Mean() != 1 {
		t.Errorf("mean = %v", u.Mean())
	}
	if math.Abs(u.Variance()-16.0/12) > 1e-12 {
		t.Errorf("variance = %v", u.Variance())
	}
	r := NewRNG(31)
	for i := 0; i < 1000; i++ {
		x := u.Sample(r)
		if x < -1 || x > 3 {
			t.Fatalf("sample out of range: %v", x)
		}
	}
}

func TestPointMass(t *testing.T) {
	p := PointMass{V: 7}
	if p.Sample(nil) != 7 || p.Mean() != 7 || p.Variance() != 0 {
		t.Error("PointMass misbehaves")
	}
}

func TestTruncatedGaussianBounds(t *testing.T) {
	tg := TruncatedGaussian{Mu: 0, Sigma: 1, Lo: -0.5, Hi: 0.5}
	r := NewRNG(37)
	for i := 0; i < 5000; i++ {
		x := tg.Sample(r)
		if x < -0.5 || x > 0.5 {
			t.Fatalf("sample %v escaped bounds", x)
		}
	}
}

func TestTruncatedGaussianSymmetricMean(t *testing.T) {
	tg := TruncatedGaussian{Mu: 0, Sigma: 1, Lo: -1, Hi: 1}
	if math.Abs(tg.Mean()) > 1e-12 {
		t.Errorf("symmetric truncation mean = %v", tg.Mean())
	}
	if v := tg.Variance(); v <= 0 || v >= 1 {
		t.Errorf("truncated variance %v should be in (0,1)", v)
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Errorf("N=%d Mean=%v", s.N(), s.Mean())
	}
	if math.Abs(s.Variance()-2.5) > 1e-12 {
		t.Errorf("variance = %v, want 2.5", s.Variance())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Error("empty summary should be all zeros")
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, whole Summary
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	for i, x := range xs {
		whole.Add(x)
		if i < 4 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("merged mean %v != %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merged variance %v != %v", a.Variance(), whole.Variance())
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merging empty changed summary")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != 2 {
		t.Errorf("merge into empty: mean %v", b.Mean())
	}
}

func TestMeanVarianceOf(t *testing.T) {
	xs := []float64{2, 4, 6}
	if MeanOf(xs) != 4 {
		t.Errorf("MeanOf = %v", MeanOf(xs))
	}
	if math.Abs(VarianceOf(xs)-4) > 1e-12 {
		t.Errorf("VarianceOf = %v", VarianceOf(xs))
	}
	if MeanOf(nil) != 0 {
		t.Error("MeanOf(nil) != 0")
	}
}

func TestLogNChooseK(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{10, 0, 0},
		{10, 10, 0},
		{10, 1, math.Log(10)},
		{10, 3, math.Log(120)},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LogNChooseK(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("LogNChooseK(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogNChooseK(5, 7), -1) {
		t.Error("k>n should be -Inf")
	}
}
