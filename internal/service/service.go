package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"uicwelfare/internal/core"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/store"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

// Options configures a Service.
type Options struct {
	// Workers is the allocation/estimation worker-pool size (default 2).
	Workers int
	// QueueCap bounds the job queue (default 64).
	QueueCap int
	// CacheEntries bounds the sketch cache (default 64).
	CacheEntries int
	// CacheMB bounds the in-memory sketch cache by approximate resident
	// cost in megabytes (0 = entry bound only).
	CacheMB int
	// JobRetention bounds how many finished jobs stay queryable
	// (default 1024).
	JobRetention int
	// MaxGraphs bounds the graph registry (default 64).
	MaxGraphs int
	// AllowPathLoads permits POST /v1/graphs requests naming
	// server-side files. Off by default: an unauthenticated daemon
	// must not let remote callers open arbitrary local paths.
	AllowPathLoads bool
	// DataDir enables the persistence tier: graphs are stored
	// content-addressed under <DataDir>/graphs, completed sketch builds
	// are spilled under <DataDir>/sketches, and New re-indexes both so a
	// restarted daemon keeps its graph ids and answers its first repeated
	// allocate from a warm path. Empty keeps today's purely in-memory
	// behavior.
	DataDir string
	// DiskMB bounds the spilled-sketch tier in megabytes (0 = unbounded);
	// only meaningful with DataDir set.
	DiskMB int
	// CacheTTL bounds how long a completed in-memory sketch stays
	// servable (0 = forever); expired entries read as misses and are
	// counted in /v1/stats.
	CacheTTL time.Duration
	// NodeID names this backend inside a cluster. When set, job ids are
	// minted as "<NodeID>-j<seq>" so the routing tier can map a job id
	// back to its backend, and GET /v1/healthz reports it so the router
	// can verify it is probing the backend it thinks it is. Empty (the
	// single-node default) keeps plain "j<seq>" ids.
	NodeID string
	// ClusterToken, when set, is the shared secret the cluster-internal
	// endpoints (POST /v1/graphs/import and the sketch export/import
	// routes) require in the ClusterTokenHeader. Imported sketches become
	// authoritative for allocation results, so a backend reachable
	// beyond its private network should set this (the router attaches
	// the token to its own backend traffic and relays a client's token on
	// proxied requests). Empty skips the check — appropriate only when
	// backends listen on a private network.
	ClusterToken string
}

// Service owns the daemon's state: the graph registry, the RR-sketch
// cache (in-memory tier plus optional disk tier), the job store, and the
// worker pool. Handler exposes it over HTTP.
type Service struct {
	registry     *Registry
	cache        *SketchCache
	disk         *store.Store // nil without a data dir
	jobs         *JobStore
	pool         *Pool
	start        time.Time
	allowPaths   bool
	nodeID       string
	clusterToken string
	cacheTTL     time.Duration
}

// New assembles a Service and starts its worker pool. With a data
// directory configured it also opens the disk tier and re-indexes it:
// every readable stored graph is registered under its content id (up to
// the registry bound), so clients' graph ids — and the sketch-cache keys
// derived from them — survive restarts.
func New(opts Options) (*Service, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	// Open the disk tier before starting the worker pool: a failed Open
	// must not leave the pool's goroutines running behind the error.
	var disk *store.Store
	if opts.DataDir != "" {
		var err error
		if disk, err = store.Open(opts.DataDir, opts.DiskMB); err != nil {
			return nil, err
		}
	}
	s := &Service{
		registry:     NewRegistry(opts.MaxGraphs),
		cache:        NewSketchCache(opts.CacheEntries, int64(opts.CacheMB)<<20, opts.CacheTTL, store.SketchCost),
		disk:         disk,
		jobs:         NewJobStore(opts.JobRetention),
		pool:         NewPool(opts.Workers, opts.QueueCap),
		start:        time.Now(),
		allowPaths:   opts.AllowPathLoads,
		nodeID:       opts.NodeID,
		clusterToken: opts.ClusterToken,
		cacheTTL:     opts.CacheTTL,
	}
	s.jobs.SetNodeID(opts.NodeID)
	if disk != nil {
		// A TTL expiry must invalidate the disk spill too — otherwise the
		// "rebuild" reloads the identical stale sketch from disk and the
		// TTL never refreshes anything on a persistent daemon.
		s.cache.SetExpireHook(func(key string) {
			if gid, _, ok := strings.Cut(key, "|"); ok {
				disk.DeleteSketch(gid, key)
			}
		})
		// Terminal jobs spill to the audit trail; append failures are
		// counted in the disk tier's spill errors, never fail the job.
		s.jobs.SetFinalSink(func(v JobView) { _ = disk.AppendJobRecord(v) })
		for _, sg := range disk.LoadGraphs() {
			if _, _, err := s.registry.AddWithID(sg.ID, sg.Name, sg.Graph); err != nil {
				break // registry full: keep what fit
			}
		}
	}
	return s, nil
}

// Close drains the worker pool.
func (s *Service) Close() { s.pool.Close() }

// ResetSketchCache drops all cached in-memory sketches (used by the
// cold-path benchmark). Safe to call while requests are in flight.
func (s *Service) ResetSketchCache() { s.cache.Reset() }

// Registry exposes the graph registry (used by tests; registration that
// should persist goes through RegisterGraph).
func (s *Service) Registry() *Registry { return s.registry }

// RegisterGraph adds a graph to the registry under its content id and,
// when the disk tier is enabled, persists it so a restart re-registers
// it under the same id. A duplicate of a resident graph dedupes to the
// existing entry (existed = true) without touching disk.
func (s *Service) RegisterGraph(name string, g *graph.Graph) (entry *GraphEntry, existed bool, err error) {
	entry, existed, err = s.registry.Add(name, g)
	if err != nil || existed {
		return entry, existed, err
	}
	if s.disk != nil {
		// Persistence is best-effort: on a write error the graph is still
		// resident and usable, a restart simply won't have it. After the
		// write, re-check for a concurrent DELETE — its disk sweep may
		// have run before our SaveGraph, and an orphaned graph file would
		// resurrect the deleted graph at every restart.
		_ = s.disk.SaveGraph(entry.ID, entry.Name, entry.Graph)
		if _, ok := s.registry.Get(entry.ID); !ok {
			s.disk.DeleteGraph(entry.ID)
		}
	}
	return entry, false, nil
}

// DeleteGraph removes a graph from the registry, drops its cached
// sketches, and deletes its persisted artifacts (graph file and spilled
// sketches). It reports whether the graph existed.
func (s *Service) DeleteGraph(id string) bool {
	if !s.registry.Delete(id) {
		return false
	}
	s.cache.InvalidateGraph(id)
	if s.disk != nil {
		s.disk.DeleteGraph(id)
	}
	return true
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	// Node is the backend's cluster node id; empty on a single-node
	// daemon.
	Node        string     `json:"node,omitempty"`
	Graphs      int        `json:"graphs"`
	SketchCache CacheStats `json:"sketch_cache"`
	// DiskTier reports the persistence tier's counters; nil when the
	// daemon runs without -data-dir.
	DiskTier    *store.Stats     `json:"disk_tier,omitempty"`
	Jobs        map[JobState]int `json:"jobs"`
	Workers     int              `json:"workers"`
	BusyWorkers int              `json:"busy_workers"`
	QueueDepth  int              `json:"queue_depth"`
	QueueCap    int              `json:"queue_cap"`
	UptimeMS    int64            `json:"uptime_ms"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() StatsResponse {
	out := StatsResponse{
		Node:        s.nodeID,
		Graphs:      s.registry.Len(),
		SketchCache: s.cache.Stats(),
		Jobs:        s.jobs.CountByState(),
		Workers:     s.pool.Workers(),
		BusyWorkers: s.pool.Busy(),
		QueueDepth:  s.pool.QueueDepth(),
		QueueCap:    s.pool.QueueCap(),
		UptimeMS:    time.Since(s.start).Milliseconds(),
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		out.DiskTier = &ds
	}
	return out
}

// HealthzResponse is the body of GET /v1/healthz: the lightweight
// liveness probe the cluster router polls. Node echoes the backend's
// -node id so the router can detect a miswired topology (probing b1 at
// b0's address) instead of silently routing jobs to the wrong shard.
type HealthzResponse struct {
	Status   string `json:"status"`
	Node     string `json:"node,omitempty"`
	Graphs   int    `json:"graphs"`
	UptimeMS int64  `json:"uptime_ms"`
}

// Healthz snapshots the liveness view.
func (s *Service) Healthz() HealthzResponse {
	return HealthzResponse{
		Status:   "ok",
		Node:     s.nodeID,
		Graphs:   s.registry.Len(),
		UptimeMS: time.Since(s.start).Milliseconds(),
	}
}

// ExportSketches streams the graph's completed in-memory sketches as a
// sketch-stream container (store.WriteSketchStreamEntry frames) — the
// payload one backend ships another so rebalancing a graph does not
// discard its warm-sketch work. Disk-tier spills are not exported: their
// cache keys are stored hashed, and anything recently used is resident
// in memory anyway. It returns how many sketches were written.
func (s *Service) ExportSketches(graphID string, w io.Writer) (int, error) {
	if _, ok := s.registry.Get(graphID); !ok {
		return 0, fmt.Errorf("unknown graph %q", graphID)
	}
	entries := s.cache.CompletedForGraph(graphID)
	for i, e := range entries {
		if err := store.WriteSketchStreamEntry(w, e.Key, e.Sketch); err != nil {
			return i, err
		}
	}
	return len(entries), nil
}

// ImportSketches reads a sketch-stream container into the graph's cache
// (and, with a data dir, the disk tier), so this backend starts warm for
// a graph it just received. Entries keyed for a different graph are
// rejected — a misrouted stream must not poison the cache — and entries
// whose key is already resident are skipped, not replaced.
func (s *Service) ImportSketches(graphID string, r io.Reader) (imported, skipped int, err error) {
	entry, ok := s.registry.Get(graphID)
	if !ok {
		return 0, 0, fmt.Errorf("unknown graph %q", graphID)
	}
	prefix := graphID + "|"
	_, err = store.ReadSketchStream(r, entry.Graph, func(key string, sketch any) error {
		if !strings.HasPrefix(key, prefix) {
			return fmt.Errorf("sketch key %q does not belong to graph %q", key, graphID)
		}
		if !s.cache.Put(key, sketch) {
			skipped++
			return nil
		}
		if s.disk != nil {
			_ = s.disk.SaveSketch(graphID, key, sketch) // best-effort, like local builds
		}
		imported++
		return nil
	})
	if err != nil {
		return imported, skipped, err
	}
	// Mirror sketchForPlan's delete race guard: if the graph vanished
	// while the stream was importing, sweep what we just inserted.
	if _, ok := s.registry.Get(graphID); !ok {
		s.cache.InvalidateGraph(graphID)
		if s.disk != nil {
			s.disk.DeleteGraph(graphID)
		}
	}
	return imported, skipped, nil
}

// allocatePlan is a validated AllocateRequest resolved to its problem
// instance, registry planner, and options.
type allocatePlan struct {
	prob    *core.Problem
	planner core.Planner
	meta    core.Meta
	opts    core.Options
}

// validateAllocate resolves the parts of an AllocateRequest that can be
// rejected synchronously (unknown graph/algo/config/cascade, budget
// mismatch), so bad requests fail with 400 instead of a failed job. The
// algorithm name resolves through the core planner registry — the same
// dispatch the job itself uses, so the two cannot disagree.
func (s *Service) validateAllocate(req *AllocateRequest) (*allocatePlan, error) {
	entry, ok := s.registry.Get(req.GraphID)
	if !ok {
		return nil, fmt.Errorf("unknown graph %q", req.GraphID)
	}
	if len(req.Budgets) == 0 {
		return nil, fmt.Errorf("budgets required")
	}
	planner, meta, err := core.Lookup(req.Algo)
	if err != nil {
		return nil, err
	}
	cascade, err := ParseCascade(req.Cascade)
	if err != nil {
		return nil, err
	}
	if err := checkWorkload(len(req.Budgets), req.Items, req.Runs, req.Workers); err != nil {
		return nil, err
	}
	if req.Eps != 0 && req.Eps < MinEps {
		return nil, fmt.Errorf("eps %g below the minimum of %g (omit or 0 for the default)", req.Eps, MinEps)
	}
	if req.Ell < 0 || req.Ell > MaxEll {
		return nil, fmt.Errorf("ell %g outside (0, %g] (omit or 0 for the default)", req.Ell, MaxEll)
	}
	model, err := BuildModel(req.Config, req.Items, len(req.Budgets), seedOf(req.Seed))
	if err != nil {
		return nil, err
	}
	prob, err := core.NewProblem(entry.Graph, model, req.Budgets)
	if err != nil {
		return nil, err
	}
	if req.Runs > 0 {
		// The inline welfare estimate walks every (seed, item) pair per
		// run; cap the pair count like the estimate endpoint does.
		pairs := 0
		for _, b := range req.Budgets {
			pairs += min(b, entry.Graph.N())
			if pairs > MaxSeedPairs {
				return nil, fmt.Errorf("budgets yield over %d seed pairs; set runs=0 or shrink budgets", MaxSeedPairs)
			}
		}
	}
	return &allocatePlan{
		prob:    prob,
		planner: planner,
		meta:    meta,
		opts:    core.Options{Eps: req.Eps, Ell: req.Ell, Cascade: cascade},
	}, nil
}

// checkWorkload rejects parameters that could exhaust the host: item
// counts blow up the 2^k utility table, and runs/workers directly size
// the Monte-Carlo estimator's work and goroutine count.
func checkWorkload(items, explicitItems, runs, workers int) error {
	if explicitItems > items {
		items = explicitItems
	}
	if items > MaxItems {
		return fmt.Errorf("%d items exceeds the limit of %d", items, MaxItems)
	}
	if runs > MaxRuns {
		return fmt.Errorf("%d runs exceeds the limit of %d", runs, MaxRuns)
	}
	if workers > MaxEstimateWorkers {
		return fmt.Errorf("%d estimate workers exceeds the limit of %d", workers, MaxEstimateWorkers)
	}
	return nil
}

func seedOf(s uint64) uint64 {
	if s == 0 {
		return 1
	}
	return s
}

// Allocate synchronously solves one allocation request with no
// cancellation or progress reporting (the warm-path benchmarks and the
// tests use this).
func (s *Service) Allocate(req *AllocateRequest) (*AllocateResult, error) {
	return s.AllocateCtx(context.Background(), req, nil)
}

// sketchForPlan resolves a sketch-capable plan's sketch through the
// tiered cache: the in-memory tier first (with singleflight semantics),
// then — inside the build callback, so concurrent requesters share one
// disk read exactly like they share one build — the disk tier, and only
// then a fresh build, whose result is spilled back to disk. hit reports
// whether any tier avoided a rebuild; it is what AllocateResult exposes
// as SketchCached and what the restart-warm smoke asserts on.
func (s *Service) sketchForPlan(ctx context.Context, graphID string, sp core.SketchPlanner, plan *allocatePlan, eps, ell float64, seed uint64) (sketch any, hit bool, err error) {
	key := SketchKey(graphID, plan.meta.SketchFamily, int(plan.opts.Cascade), eps, ell, sp.SketchBudgets(plan.prob))
	var diskHit bool
	for {
		var memHit bool
		sketch, memHit, err = s.cache.GetOrBuildCtx(ctx, key, func() (any, error) {
			if s.disk != nil {
				// The TTL bounds spill age too: a spill left by cost
				// eviction or a restart must not resurrect a sketch older
				// than the TTL promises.
				if sk := s.disk.LoadSketch(graphID, key, plan.prob.G, s.cacheTTL); sk != nil {
					diskHit = true
					return sk, nil
				}
			}
			buildOpts := plan.opts
			buildOpts.Eps, buildOpts.Ell = eps, ell
			sk, err := sp.BuildSketch(ctx, plan.prob, buildOpts, stats.NewRNG(seed))
			if err == nil && s.disk != nil {
				_ = s.disk.SaveSketch(graphID, key, sk) // best-effort; failure only costs warmth
			}
			return sk, err
		})
		if err == nil {
			// The graph may have been deleted while the sketch was
			// building — after the delete's sweeps already ran, so the
			// memory entry and the just-written spill would otherwise
			// outlive the deletion (the spill permanently: nothing else
			// sweeps a deleted graph's sketch files). Re-check and sweep
			// both tiers.
			if _, ok := s.registry.Get(graphID); !ok {
				s.cache.InvalidateGraph(graphID)
				if s.disk != nil {
					s.disk.DeleteGraph(graphID)
				}
			}
			return sketch, memHit || diskHit, nil
		}
		// A waiter inherits the *builder's* cancellation (or deadline
		// expiry) through the shared singleflight entry. If this
		// request's own context is still live, the dead entry has
		// already been evicted — retry, becoming the new builder,
		// instead of failing a job nobody canceled.
		if ctx.Err() == nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return nil, false, err
	}
}

// AllocateCtx solves one allocation request under ctx, reporting
// progress through report (which may be nil). Dispatch goes through the
// core planner registry; for planners with the SketchPlanner capability
// sketch resolution goes through the tiered cache (memory, then disk,
// then build — see sketchForPlan), the rest run their Plan directly.
// Cancellation: ctx is threaded through sketch construction, cache
// waits, and the inline welfare estimate, so a canceled context aborts
// the request promptly with ctx.Err(). A canceled cache build caches
// nothing — concurrent waiters for the same sketch receive the error and
// the next request rebuilds.
func (s *Service) AllocateCtx(ctx context.Context, req *AllocateRequest, report progress.Func) (*AllocateResult, error) {
	startT := time.Now()
	plan, err := s.validateAllocate(req)
	if err != nil {
		return nil, err
	}
	plan.opts.Progress = report
	prob, opts := plan.prob, plan.opts
	seed := seedOf(req.Seed)
	eps, ell := opts.Eps, opts.Ell
	if eps <= 0 {
		eps = 0.5
	}
	if ell <= 0 {
		ell = 1
	}

	var (
		res core.Result
		hit bool
	)
	if sp, ok := plan.planner.(core.SketchPlanner); ok {
		v, h, err := s.sketchForPlan(ctx, req.GraphID, sp, plan, eps, ell, seed)
		if err != nil {
			return nil, err
		}
		hit = h
		res, err = sp.PlanFromSketch(prob, v)
		if err != nil {
			return nil, err
		}
	} else {
		res, err = plan.planner.Plan(ctx, prob, opts, stats.NewRNG(seed))
		if err != nil {
			return nil, err
		}
	}

	out := NewAllocateResult(plan.meta.Name, res)
	out.SketchCached = hit
	if req.Runs > 0 {
		est, err := uic.EstimateWelfareParallelCascadeCtx(ctx, prob.G, prob.Model, opts.Cascade, res.Alloc,
			stats.NewRNG(seed+1), req.Runs, req.Workers, report)
		if err != nil {
			return nil, err
		}
		out.Welfare = &WelfareDTO{Mean: est.Mean, StdErr: est.StdErr, Runs: est.Runs}
	}
	out.ElapsedMS = time.Since(startT).Milliseconds()
	return out, nil
}

// validateWarm resolves a warm request against the same checks as an
// allocation, additionally requiring a sketch-capable algorithm —
// warming a planner with no reusable sketch would build nothing a later
// request could reuse.
func (s *Service) validateWarm(graphID string, req *WarmRequest) (*allocatePlan, core.SketchPlanner, error) {
	plan, err := s.validateAllocate(&AllocateRequest{
		GraphID: graphID,
		Algo:    req.Algo,
		Config:  req.Config,
		Items:   req.Items,
		Budgets: req.Budgets,
		Eps:     req.Eps,
		Ell:     req.Ell,
		Cascade: req.Cascade,
		Seed:    req.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	sp, ok := plan.planner.(core.SketchPlanner)
	if !ok {
		return nil, nil, fmt.Errorf("algorithm %q has no cacheable sketch to warm", plan.meta.Name)
	}
	return plan, sp, nil
}

// WarmCtx prebuilds the sketch an equivalent allocate request would
// need, through the same tiered cache path, so a later allocation — or a
// daemon restart followed by one, since completed builds spill to the
// disk tier — starts warm. It runs as an ordinary cancelable job.
func (s *Service) WarmCtx(ctx context.Context, graphID string, req *WarmRequest, report progress.Func) (*WarmResult, error) {
	startT := time.Now()
	plan, sp, err := s.validateWarm(graphID, req)
	if err != nil {
		return nil, err
	}
	plan.opts.Progress = report
	eps, ell := plan.opts.Eps, plan.opts.Ell
	if eps <= 0 {
		eps = 0.5
	}
	if ell <= 0 {
		ell = 1
	}
	sketch, hit, err := s.sketchForPlan(ctx, graphID, sp, plan, eps, ell, seedOf(req.Seed))
	if err != nil {
		return nil, err
	}
	out := &WarmResult{
		Algorithm:    plan.meta.Name,
		SketchFamily: plan.meta.SketchFamily,
		AlreadyWarm:  hit,
		ElapsedMS:    time.Since(startT).Milliseconds(),
	}
	if sized, ok := sketch.(interface{ NumRRSets() int }); ok {
		out.NumRRSets = sized.NumRRSets()
	}
	return out, nil
}

// validateEstimate resolves the parts of an EstimateRequest that can be
// rejected synchronously.
func (s *Service) validateEstimate(req *EstimateRequest) (*GraphEntry, *uic.Allocation, *utility.Model, error) {
	entry, ok := s.registry.Get(req.GraphID)
	if !ok {
		return nil, nil, nil, fmt.Errorf("unknown graph %q", req.GraphID)
	}
	if len(req.Allocation.Seeds) == 0 {
		return nil, nil, nil, fmt.Errorf("allocation required")
	}
	if _, err := ParseCascade(req.Cascade); err != nil {
		return nil, nil, nil, err
	}
	if err := checkWorkload(len(req.Allocation.Seeds), req.Items, req.Runs, req.Workers); err != nil {
		return nil, nil, nil, err
	}
	// Range-check the raw wire values: converting first would let ids
	// beyond int32 silently truncate into valid node ids. Also bound the
	// total pair count — every Monte-Carlo run walks every pair.
	pairs := 0
	for _, seeds := range req.Allocation.Seeds {
		pairs += len(seeds)
		if pairs > MaxSeedPairs {
			return nil, nil, nil, fmt.Errorf("allocation exceeds %d seed pairs", MaxSeedPairs)
		}
		for _, v := range seeds {
			if v < 0 || v >= int64(entry.Graph.N()) {
				return nil, nil, nil, fmt.Errorf("seed node %d out of range [0, %d)", v, entry.Graph.N())
			}
		}
	}
	alloc := req.Allocation.Allocation()
	model, err := BuildModel(req.Config, req.Items, alloc.K(), seedOf(req.Seed))
	if err != nil {
		return nil, nil, nil, err
	}
	if model.K() != alloc.K() {
		return nil, nil, nil, fmt.Errorf("allocation has %d items, configuration %q has %d",
			alloc.K(), req.Config, model.K())
	}
	return entry, alloc, model, nil
}

// Estimate synchronously runs one estimation request with no
// cancellation or progress reporting.
func (s *Service) Estimate(req *EstimateRequest) (*EstimateResult, error) {
	return s.EstimateCtx(context.Background(), req, nil)
}

// EstimateCtx runs one estimation request under ctx, reporting progress
// through report (which may be nil); a canceled context aborts the
// Monte-Carlo loop promptly with ctx.Err().
func (s *Service) EstimateCtx(ctx context.Context, req *EstimateRequest, report progress.Func) (*EstimateResult, error) {
	startT := time.Now()
	entry, alloc, model, err := s.validateEstimate(req)
	if err != nil {
		return nil, err
	}
	cascade, _ := ParseCascade(req.Cascade)
	runs := req.Runs
	if runs <= 0 {
		runs = 10000
	}
	est, err := uic.EstimateWelfareParallelCascadeCtx(ctx, entry.Graph, model, cascade, alloc,
		stats.NewRNG(seedOf(req.Seed)), runs, req.Workers, report)
	if err != nil {
		return nil, err
	}
	return &EstimateResult{
		Welfare:   WelfareDTO{Mean: est.Mean, StdErr: est.StdErr, Runs: est.Runs},
		ElapsedMS: time.Since(startT).Milliseconds(),
	}, nil
}
