// Package oracle provides an influence/allocation oracle in the spirit
// the paper motivates PRIMA with (§2.1, the SKIM discussion): build one
// prefix-preserving seed ordering up to a maximum budget, then answer
// any number of budget queries — single-item seed sets, spread
// estimates, or full bundleGRD allocations — without touching the graph
// again. Query time is O(answer size).
package oracle

import (
	"fmt"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/prima"
	"uicwelfare/internal/rrset"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
)

// Oracle holds a prefix-preserving seed ordering of length MaxBudget and
// per-prefix spread estimates.
type Oracle struct {
	g *graph.Graph
	// order is the PRIMA seed ranking; every prefix of size b <= max is a
	// (1-1/e-ε)-approximate seed set for budget b.
	order []graph.NodeID
	// spread[b] estimates sigma of the top-b prefix (spread[0] = 0).
	spread []float64
	// NumRRSets records the build effort.
	NumRRSets int
}

// Options configures the build.
type Options struct {
	Eps     float64
	Ell     float64
	Cascade graph.Cascade
	// SpreadSamples sizes the per-prefix spread estimation collection
	// (default 20000 RR sets).
	SpreadSamples int
}

// Build constructs the oracle for budgets up to maxBudget. All budgets in
// later queries must be <= maxBudget. PRIMA receives a geometric budget
// ladder (1, 2, 4, ..., maxBudget): the prefix-preserving guarantee holds
// exactly at the rungs, costs only a log factor in the union bound, and
// greedy prefixes interpolate smoothly between rungs.
func Build(g *graph.Graph, maxBudget int, opts Options, rng *stats.RNG) (*Oracle, error) {
	if maxBudget < 1 {
		return nil, fmt.Errorf("oracle: maxBudget %d < 1", maxBudget)
	}
	if maxBudget > g.N() {
		maxBudget = g.N()
	}
	if opts.SpreadSamples <= 0 {
		opts.SpreadSamples = 20000
	}
	var ladder []int
	for b := 1; b < maxBudget; b *= 2 {
		ladder = append(ladder, b)
	}
	ladder = append(ladder, maxBudget)

	res := prima.Select(g, ladder, prima.Options{Eps: opts.Eps, Ell: opts.Ell, Cascade: opts.Cascade}, rng)
	o := &Oracle{g: g, order: res.Seeds, NumRRSets: res.NumRRSets}

	// Per-prefix spread estimates from one fresh RR collection: the
	// estimator sigma(S) = n·F_R(S) is valid for every S simultaneously.
	col := rrset.NewCollection(g)
	col.Sampler().Cascade = opts.Cascade
	col.Grow(int64(opts.SpreadSamples), rng)
	o.spread = make([]float64, len(o.order)+1)
	covered := make([]bool, col.Len())
	count := 0
	for b, v := range o.order {
		for _, id := range coverList(col, v) {
			if !covered[id] {
				covered[id] = true
				count++
			}
		}
		o.spread[b+1] = float64(g.N()) * float64(count) / float64(col.Len())
	}
	return o, nil
}

// coverList returns the RR-set ids containing v by scanning the
// collection's inverted index.
func coverList(col *rrset.Collection, v graph.NodeID) []int32 {
	return col.Covering(v)
}

// MaxBudget returns the largest budget the oracle can answer.
func (o *Oracle) MaxBudget() int { return len(o.order) }

// Seeds answers a single-budget query: the top-b seed nodes.
func (o *Oracle) Seeds(b int) ([]graph.NodeID, error) {
	if b < 0 || b > len(o.order) {
		return nil, fmt.Errorf("oracle: budget %d outside [0, %d]", b, len(o.order))
	}
	return o.order[:b], nil
}

// Spread answers an expected-spread query for the top-b prefix.
func (o *Oracle) Spread(b int) (float64, error) {
	if b < 0 || b > len(o.order) {
		return 0, fmt.Errorf("oracle: budget %d outside [0, %d]", b, len(o.order))
	}
	return o.spread[b], nil
}

// Allocate answers a bundleGRD allocation query for an arbitrary budget
// vector (each entry <= MaxBudget) without recomputation: item i gets the
// top-b_i prefix, exactly as Algorithm 1 would.
func (o *Oracle) Allocate(budgets []int) (*uic.Allocation, error) {
	alloc := uic.NewAllocation(len(budgets))
	for i, b := range budgets {
		if b < 0 || b > len(o.order) {
			return nil, fmt.Errorf("oracle: item %d budget %d outside [0, %d]", i, b, len(o.order))
		}
		for _, v := range o.order[:b] {
			alloc.Assign(v, i)
		}
	}
	return alloc, nil
}
