package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleSweepResult() *SweepResult {
	return &SweepResult{
		SweepID:  "n0-j7",
		Name:     "mini-grid",
		TraceID:  "t-abc123",
		SpecJSON: []byte(`{"graph_ids":["g1","g2"],"budgets":[[25,25]]}`),
		Cells: []SweepCell{
			{
				Index: 0, CellID: "c0", GraphID: "g1", Algo: "bundleGRD",
				Config: "config1", Cascade: "ic", Eps: 0.3, Budgets: []int{25, 25},
				Seed: 1, State: "done", Node: "b0", JobID: "b0-j3",
				WelfareMean: 412.5, WelfareStdErr: 3.1, WelfareRuns: 200,
				HasWelfare: true, SketchCached: true, ElapsedMS: 91,
			},
			{
				Index: 1, CellID: "c1", GraphID: "g2", Algo: "item-disj",
				Config: "config3", Cascade: "ic", Budgets: []int{50, 50},
				Seed: 1, State: "failed", Node: "b1", JobID: "b1-j4",
				ElapsedMS: 12, Error: "backend b1 job b1-j4: graph evicted",
			},
			{
				Index: 2, CellID: "c2", GraphID: "g2", Algo: "",
				Config: "config1", Cascade: "lt", Budgets: []int{10},
				Seed: 2, State: "canceled",
			},
		},
	}
}

func TestSweepResultRoundTrip(t *testing.T) {
	res := sampleSweepResult()
	var buf bytes.Buffer
	if err := EncodeSweepResult(&buf, res); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSweepResult(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(res, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, res)
	}
	// The content id is the artifact's checksum: a decoded artifact must
	// re-derive the id of the result that was encoded.
	if id, reID := SweepResultID(res), SweepResultID(got); id != reID {
		t.Errorf("id not stable across round trip: %s vs %s", id, reID)
	}
}

func TestSweepResultIDSensitivity(t *testing.T) {
	a := SweepResultID(sampleSweepResult())
	if b := SweepResultID(sampleSweepResult()); a != b {
		t.Errorf("id not deterministic: %s vs %s", a, b)
	}
	changed := sampleSweepResult()
	changed.Cells[0].WelfareMean += 0.001
	if b := SweepResultID(changed); a == b {
		t.Error("id did not change when a cell's welfare changed")
	}
}

func TestSweepResultCorruptInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSweepResult(&buf, sampleSweepResult()); err != nil {
		t.Fatalf("encode: %v", err)
	}
	good := buf.Bytes()
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		want    error
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }, ErrTruncated},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"flipped payload bit", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[30] ^= 0x20
			return c
		}, ErrChecksum},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}, ErrBadMagic},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeSweepResult(bytes.NewReader(tc.corrupt(good))); !errors.Is(err, tc.want) {
				t.Errorf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestStoreSweepSaveLoadList(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	res := sampleSweepResult()
	id, err := s.SaveSweep(res)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if id != SweepResultID(res) {
		t.Errorf("save returned %s, want content id %s", id, SweepResultID(res))
	}
	// Re-save dedupes on the content address.
	if id2, err := s.SaveSweep(res); err != nil || id2 != id {
		t.Errorf("re-save: id %s err %v", id2, err)
	}
	got, err := s.LoadSweep(id)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(res, got) {
		t.Error("loaded sweep differs from saved")
	}
	list := s.ListSweeps()
	if len(list) != 1 || list[0].ArtifactID != id {
		t.Errorf("list: %+v, want one entry %s", list, id)
	}

	// A corrupted artifact is rejected and removed, not served.
	path := filepath.Join(dir, "sweeps", id+SweepExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read artifact: %v", err)
	}
	raw[len(raw)-6] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("rewrite artifact: %v", err)
	}
	if _, err := s.LoadSweep(id); !errors.Is(err, ErrChecksum) {
		t.Errorf("corrupt load: %v, want ErrChecksum", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt artifact was not removed")
	}
}

func TestSweepFileHelpers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sweeps")
	res := sampleSweepResult()
	id, err := SaveSweepFile(dir, res)
	if err != nil {
		t.Fatalf("save file: %v", err)
	}
	got, err := LoadSweepFile(dir, id)
	if err != nil {
		t.Fatalf("load file: %v", err)
	}
	if !reflect.DeepEqual(res, got) {
		t.Error("file round trip differs")
	}
}
