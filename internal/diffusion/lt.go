package diffusion

import (
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
)

// SampleLTWorld draws a linear-threshold possible world: every node
// selects at most one in-neighbor as its trigger (edge (u,v) live with
// probability p(u,v), no edge with the remaining mass). The result is an
// ordinary LiveEdgeWorld, so reachability and the UIC world-runner work
// unchanged — the triggering-set representation of Kempe et al.
func SampleLTWorld(g *graph.Graph, rng *stats.RNG) *LiveEdgeWorld {
	w := &LiveEdgeWorld{g: g, live: make([]bool, g.M())}
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		pos := sampleTrigger(g, v, rng)
		if pos >= 0 {
			w.live[pos] = true
		}
	}
	return w
}

// sampleTrigger picks node v's live in-edge (as a global out-edge
// position) or -1 for none.
func sampleTrigger(g *graph.Graph, v graph.NodeID, rng *stats.RNG) int64 {
	_, ps := g.InEdges(v)
	if len(ps) == 0 {
		return -1
	}
	r := rng.Float64()
	cum := 0.0
	positions := g.InEdgePositions(v)
	for i, p := range ps {
		cum += float64(p)
		if r < cum {
			return positions[i]
		}
	}
	return -1
}

// LTSim runs forward linear-threshold cascades using lazy trigger
// sampling: a node's trigger edge is drawn the first time one of its
// in-neighbors activates, which is distribution-equivalent to sampling
// the full world up front. Buffers are reused; not safe for concurrent
// use.
type LTSim struct {
	g          *graph.Graph
	visited    []int32
	triggerGen []int32
	trigger    []int64 // global out-edge position, -1 for none
	epoch      int32
	queue      []graph.NodeID
}

// NewLTSim returns an LT simulator for g. g should satisfy ValidateLT.
func NewLTSim(g *graph.Graph) *LTSim {
	return &LTSim{
		g:          g,
		visited:    make([]int32, g.N()),
		triggerGen: make([]int32, g.N()),
		trigger:    make([]int64, g.N()),
	}
}

func (s *LTSim) triggerOf(v graph.NodeID, rng *stats.RNG) int64 {
	if s.triggerGen[v] != s.epoch {
		s.triggerGen[v] = s.epoch
		s.trigger[v] = sampleTrigger(s.g, v, rng)
	}
	return s.trigger[v]
}

// RunOnce performs one LT cascade from the seed set and returns the
// number of active nodes.
func (s *LTSim) RunOnce(seeds []graph.NodeID, rng *stats.RNG) int {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.visited {
			s.visited[i] = -1
			s.triggerGen[i] = -1
		}
		s.epoch = 1
	}
	q := s.queue[:0]
	active := 0
	for _, v := range seeds {
		if s.visited[v] == s.epoch {
			continue
		}
		s.visited[v] = s.epoch
		active++
		q = append(q, v)
	}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		base := s.g.OutEdgeBase(u)
		ts, _ := s.g.OutEdges(u)
		for j, v := range ts {
			if s.visited[v] == s.epoch {
				continue
			}
			if s.triggerOf(v, rng) != base+int64(j) {
				continue
			}
			s.visited[v] = s.epoch
			active++
			q = append(q, v)
		}
	}
	s.queue = q[:0]
	return active
}

// Spread estimates the expected LT spread by Monte-Carlo.
func (s *LTSim) Spread(seeds []graph.NodeID, rng *stats.RNG, runs int) float64 {
	if runs <= 0 {
		runs = 1
	}
	total := 0
	for i := 0; i < runs; i++ {
		total += s.RunOnce(seeds, rng)
	}
	return float64(total) / float64(runs)
}

// ExactLTSpread computes the exact LT spread by enumerating all trigger
// assignments (each node independently picks one in-edge or none). The
// state space is Π_v (indeg(v)+1); intended for tiny test graphs.
func ExactLTSpread(g *graph.Graph, seeds []graph.NodeID) float64 {
	states := 1.0
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		states *= float64(g.InDegree(v) + 1)
		if states > 1e6 {
			panic("diffusion: ExactLTSpread state space too large")
		}
	}
	total := 0.0
	var rec func(v graph.NodeID, prob float64, live []bool)
	rec = func(v graph.NodeID, prob float64, live []bool) {
		if int(v) == g.N() {
			w := &LiveEdgeWorld{g: g, live: live}
			total += prob * float64(w.CountReachable(seeds))
			return
		}
		_, ps := g.InEdges(v)
		positions := g.InEdgePositions(v)
		rest := 1.0
		for i, p := range ps {
			if p == 0 {
				continue
			}
			live[positions[i]] = true
			rec(v+1, prob*float64(p), live)
			live[positions[i]] = false
			rest -= float64(p)
		}
		if rest > 1e-12 {
			rec(v+1, prob*rest, live)
		}
	}
	rec(0, 1, make([]bool, g.M()))
	return total
}
