// Package auction simulates eBay-style English auctions with proxy
// bidding and learns item-value distributions from the observable bid
// history, standing in for the bidding data the paper mines to build
// Table 5 (§4.3.4.1). The learner follows the spirit of Jiang &
// Leyton-Brown: it accounts for hidden bids (the winner's true value is
// never revealed; bidders below the ask never bid) by fitting the
// observed final prices as second order statistics of the latent value
// distribution.
package auction

import (
	"fmt"
	"math"
	"sort"

	"uicwelfare/internal/stats"
)

// Auction is the observable record of one English auction.
type Auction struct {
	// Bids is the ascending sequence of observed proxy-bid prices.
	Bids []float64
	// FinalPrice is what the winner paid: the second-highest valuation
	// (plus a minimal increment, folded into the noise).
	FinalPrice float64
	// Bidders is the number of registered participants (known to the
	// platform, even for those whose value never exceeded the ask).
	Bidders int
}

// Simulate runs one English auction among n bidders whose private values
// are drawn i.i.d. from N(mu, sigma^2). With proxy bidding the price
// ascends to the second-highest value; bids below the current ask are
// hidden (never observed).
func Simulate(mu, sigma float64, n int, rng *stats.RNG) Auction {
	if n < 2 {
		n = 2
	}
	values := make([]float64, n)
	for i := range values {
		values[i] = mu + sigma*rng.NormFloat64()
	}
	sort.Float64s(values)
	// Observed ascending bids: each losing bidder pushes the ask to
	// (roughly) their value before dropping out; values below the opening
	// price (0 here) stay hidden.
	var bids []float64
	for _, v := range values[:n-1] {
		if v > 0 {
			bids = append(bids, v)
		}
	}
	return Auction{
		Bids:       bids,
		FinalPrice: values[n-2], // second-highest value
		Bidders:    n,
	}
}

// SimulateMany runs r independent auctions with the same latent value
// distribution.
func SimulateMany(mu, sigma float64, n, r int, rng *stats.RNG) []Auction {
	out := make([]Auction, r)
	for i := range out {
		out[i] = Simulate(mu, sigma, n, rng)
	}
	return out
}

// Learned is the fitted value distribution of an itemset: the paper
// takes Value = mean of the learned distribution and Noise = a zero-mean
// Gaussian with the learned variance.
type Learned struct {
	Value    float64 // estimated mu
	NoiseStd float64 // estimated sigma
}

// orderStatMoments returns the mean and standard deviation of the
// second-highest of n standard normal draws, estimated once by
// simulation (50k trials) and cached per n.
var orderStatCache = map[int][2]float64{}

func orderStatMoments(n int) (mean, sd float64) {
	if m, ok := orderStatCache[n]; ok {
		return m[0], m[1]
	}
	rng := stats.NewRNG(0xa0c7 + uint64(n))
	var sum stats.Summary
	vals := make([]float64, n)
	for t := 0; t < 50000; t++ {
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		sort.Float64s(vals)
		sum.Add(vals[n-2])
	}
	mean, sd = sum.Mean(), sum.StdDev()
	orderStatCache[n] = [2]float64{mean, sd}
	return mean, sd
}

// Learn fits (mu, sigma) from the observed final prices of a batch of
// auctions by method of moments on the second order statistic: with
// E2(n), S2(n) the mean and std of the second-highest of n standard
// normals,
//
//	E[price] = mu + sigma·E2(n),  SD[price] = sigma·S2(n).
//
// All auctions must have the same number of bidders.
func Learn(auctions []Auction) (Learned, error) {
	if len(auctions) < 2 {
		return Learned{}, fmt.Errorf("auction: need at least 2 auctions, have %d", len(auctions))
	}
	n := auctions[0].Bidders
	var prices stats.Summary
	for _, a := range auctions {
		if a.Bidders != n {
			return Learned{}, fmt.Errorf("auction: mixed bidder counts %d vs %d", a.Bidders, n)
		}
		prices.Add(a.FinalPrice)
	}
	e2, s2 := orderStatMoments(n)
	if s2 <= 0 {
		return Learned{}, fmt.Errorf("auction: degenerate order statistic for n=%d", n)
	}
	sigma := prices.StdDev() / s2
	mu := prices.Mean() - sigma*e2
	if sigma < 0 || math.IsNaN(sigma) || math.IsNaN(mu) {
		return Learned{}, fmt.Errorf("auction: fit failed (mu=%v sigma=%v)", mu, sigma)
	}
	return Learned{Value: mu, NoiseStd: sigma}, nil
}

// LearnFromGroundTruth simulates r auctions with the given latent
// parameters and learns them back — the end-to-end pipeline used by the
// Table 5 reproduction.
func LearnFromGroundTruth(mu, sigma float64, bidders, r int, rng *stats.RNG) (Learned, error) {
	return Learn(SimulateMany(mu, sigma, bidders, r, rng))
}
