package rrset

import (
	"context"
	"fmt"
	"sync/atomic"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/telemetry"
)

// Collection stores a growing multiset of RR sets together with the
// inverted node -> set index needed by NodeSelection. Sets are stored in a
// single backing slice to keep allocation rates low.
//
// Concurrency: Add, Grow and Reset mutate the collection and must be
// serialized by the caller. Once growing stops, the read-only surface
// (Len, TotalSize, Set, Covering, CoverageOf, FractionCovered,
// NodeSelection — which allocates all of its scratch state locally) is
// safe for any number of concurrent readers. The IMM/PRIMA sketch caches
// build a collection once and then share it read-only across request
// goroutines.
type Collection struct {
	g *graph.Graph

	// flattened set storage
	members []graph.NodeID
	offsets []int64 // set i occupies members[offsets[i]:offsets[i+1]]

	// inverted index: for each node, the ids of sets containing it
	coverOf [][]int32

	sampler *Sampler

	// Parallel-grow state (see GrowParallelCtx): pooled per-worker
	// samplers reused across adaptive rounds, and the width statistic
	// accumulated by parallel workers (read/written atomically — workers
	// add while EdgesVisited may be read for progress displays).
	parSamplers []*Sampler
	parEdges    int64
}

// NewCollection returns an empty collection for g.
func NewCollection(g *graph.Graph) *Collection {
	return &Collection{
		g:       g,
		offsets: []int64{0},
		coverOf: make([][]int32, g.N()),
		sampler: NewSampler(g),
	}
}

// Sampler exposes the underlying sampler so callers can set a node coin.
func (c *Collection) Sampler() *Sampler { return c.sampler }

// Members returns the flattened member storage of every stored set (set i
// occupies Members()[Offsets()[i]:Offsets()[i+1]]). The slice aliases
// internal storage and must not be modified. Together with Offsets and
// Restore this is the collection's serialization seam.
func (c *Collection) Members() []graph.NodeID { return c.members }

// Offsets returns the set-boundary offsets into Members; it has Len()+1
// entries starting at 0. The slice aliases internal storage and must not
// be modified.
func (c *Collection) Offsets() []int64 { return c.offsets }

// Restore reassembles a collection for g from flattened member storage
// as returned by Members and Offsets, rebuilding the inverted
// node -> set index. The inputs are validated — a malformed pair (e.g.
// from a corrupt sketch file) returns an error rather than a collection
// that would misbehave under NodeSelection. The slices are retained;
// callers must not modify them afterwards. The restored collection is
// immediately usable read-only (the sketch-cache contract); growing it
// further is also legal.
func Restore(g *graph.Graph, members []graph.NodeID, offsets []int64) (*Collection, error) {
	if len(offsets) == 0 || offsets[0] != 0 {
		return nil, fmt.Errorf("rrset: offsets must start at 0")
	}
	if offsets[len(offsets)-1] != int64(len(members)) {
		return nil, fmt.Errorf("rrset: offsets end at %d, want member count %d",
			offsets[len(offsets)-1], len(members))
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("rrset: offsets not monotone at set %d", i-1)
		}
	}
	n := g.N()
	for _, v := range members {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("rrset: member node %d out of range [0, %d)", v, n)
		}
	}
	c := &Collection{
		g:       g,
		members: members,
		offsets: offsets,
		coverOf: make([][]int32, n),
		sampler: NewSampler(g),
	}
	for i := 0; i < c.Len(); i++ {
		for _, v := range c.Set(i) {
			c.coverOf[v] = append(c.coverOf[v], int32(i))
		}
	}
	return c, nil
}

// N returns the node count of the underlying graph.
func (c *Collection) N() int { return c.g.N() }

// Len returns the number of RR sets stored.
func (c *Collection) Len() int { return len(c.offsets) - 1 }

// TotalSize returns the total number of node memberships across all sets.
func (c *Collection) TotalSize() int64 { return int64(len(c.members)) }

// EdgesVisited returns the cumulative width statistic of all samples,
// including sets sampled by parallel workers (see GrowParallelCtx).
func (c *Collection) EdgesVisited() int64 {
	return c.sampler.EdgesVisited + atomic.LoadInt64(&c.parEdges)
}

// Add samples one more RR set.
func (c *Collection) Add(rng *stats.RNG) {
	start := len(c.members)
	c.members = c.sampler.Sample(rng, c.members)
	id := int32(c.Len())
	for _, v := range c.members[start:] {
		c.coverOf[v] = append(c.coverOf[v], id)
	}
	c.offsets = append(c.offsets, int64(len(c.members)))
}

// Grow samples RR sets until the collection holds at least target sets.
func (c *Collection) Grow(target int64, rng *stats.RNG) {
	_ = c.GrowCtx(context.Background(), target, rng, nil) // background ctx: never canceled
}

// growChunk is how many RR sets GrowCtx samples between cancellation
// checks and progress reports. Small enough that cancellation lands
// promptly even on graphs where a single set is expensive, large enough
// that the per-chunk overhead is invisible next to the sampling itself.
const growChunk = 256

// GrowCtx is Grow with cooperative cancellation and progress reporting:
// every growChunk samples it checks ctx and, when report is non-nil,
// reports the sets sampled so far against target. It returns ctx.Err()
// when canceled, leaving the collection with whatever it had sampled;
// callers abandoning the build should discard the collection.
func (c *Collection) GrowCtx(ctx context.Context, target int64, rng *stats.RNG, report func(done, target int64)) error {
	defer telemetry.StartSpan(ctx, "rrset_grow")()
	start := int64(c.Len())
	defer func() {
		telemetry.AddResource(ctx, telemetry.ResRRSetsGrown, int64(c.Len())-start)
	}()
	for int64(c.Len()) < target {
		if err := ctx.Err(); err != nil {
			return err
		}
		stop := int64(c.Len()) + growChunk
		if stop > target {
			stop = target
		}
		for int64(c.Len()) < stop {
			c.Add(rng)
		}
		if report != nil {
			report(int64(c.Len()), target)
		}
	}
	return nil
}

// Set returns the members of set i.
func (c *Collection) Set(i int) []graph.NodeID {
	return c.members[c.offsets[i]:c.offsets[i+1]]
}

// Covering returns the ids of the stored sets containing v. The slice
// aliases internal storage and must not be modified.
func (c *Collection) Covering(v graph.NodeID) []int32 { return c.coverOf[v] }

// Reset drops all stored sets, keeping allocated capacity. PRIMA uses this
// for its final from-scratch regeneration phase.
func (c *Collection) Reset() {
	c.members = c.members[:0]
	c.offsets = c.offsets[:1]
	for i := range c.coverOf {
		c.coverOf[i] = c.coverOf[i][:0]
	}
}

// CoverageOf returns the number of sets hit by the given seed set,
// computed from scratch (used by tests; NodeSelection tracks coverage
// incrementally).
func (c *Collection) CoverageOf(seeds []graph.NodeID) int {
	covered := make([]bool, c.Len())
	for _, s := range seeds {
		for _, id := range c.coverOf[s] {
			covered[id] = true
		}
	}
	n := 0
	for _, b := range covered {
		if b {
			n++
		}
	}
	return n
}

// FractionCovered returns F_R(seeds), the fraction of stored sets hit by
// the seed set; n * F_R(S) is the spread estimator.
func (c *Collection) FractionCovered(seeds []graph.NodeID) float64 {
	if c.Len() == 0 {
		return 0
	}
	return float64(c.CoverageOf(seeds)) / float64(c.Len())
}

// NodeSelection greedily picks k nodes maximizing RR-set coverage (the
// standard max-cover procedure of TIM/IMM). It returns the ordered seed
// set and the fraction of sets covered by the full selection. The
// procedure is deterministic given the collection and selects one node at
// a time, so for any k' < k the budget-k' selection is exactly the first
// k' nodes of the budget-k selection — the property PRIMA's budget-switch
// seed reuse relies on.
func (c *Collection) NodeSelection(k int) (seeds []graph.NodeID, covered float64) {
	return c.NodeSelectionReport(k, nil)
}

// selectionReportChunk is how many seed selections NodeSelectionReport
// commits between prefix reports; small enough that a progress stream
// sees the ordering grow, large enough that reporting stays invisible
// next to the coverage updates themselves.
const selectionReportChunk = 16

// NodeSelectionReport is NodeSelection with an incremental prefix
// callback: report (when non-nil) receives the ordered prefix selected
// so far, every selectionReportChunk seeds and once more with the final
// selection. The slice aliases the selection's own storage — callers
// that retain it must copy.
func (c *Collection) NodeSelectionReport(k int, report func(prefix []graph.NodeID)) (seeds []graph.NodeID, covered float64) {
	n := c.g.N()
	if k > n {
		k = n
	}
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(len(c.coverOf[v]))
	}
	setCovered := make([]bool, c.Len())
	seeds = make([]graph.NodeID, 0, k)
	totalCovered := 0
	commit := func(v int32) {
		seeds = append(seeds, graph.NodeID(v))
		if report != nil && len(seeds)%selectionReportChunk == 0 {
			report(seeds)
		}
	}

	// Lazy-greedy with a simple binary heap keyed by stale degree.
	h := newMaxHeap(deg)
	for len(seeds) < k && h.len() > 0 {
		v := h.popStale(deg)
		if v < 0 {
			break
		}
		if deg[v] == 0 {
			// All remaining nodes cover nothing new; still emit nodes to
			// honor the budget (arbitrary but deterministic order).
			commit(v)
			continue
		}
		commit(v)
		for _, id := range c.coverOf[v] {
			if setCovered[id] {
				continue
			}
			setCovered[id] = true
			totalCovered++
			for _, w := range c.Set(int(id)) {
				deg[w]--
			}
		}
	}
	if report != nil && len(seeds) > 0 && len(seeds)%selectionReportChunk != 0 {
		report(seeds)
	}
	if c.Len() == 0 {
		return seeds, 0
	}
	return seeds, float64(totalCovered) / float64(c.Len())
}

// maxHeap is a binary heap over node ids keyed by (possibly stale)
// coverage degrees, implementing the CELF-style lazy greedy: a popped
// node whose key is stale is re-pushed with its fresh degree.
type maxHeap struct {
	ids  []int32
	keys []int32
}

func newMaxHeap(deg []int32) *maxHeap {
	h := &maxHeap{
		ids:  make([]int32, len(deg)),
		keys: make([]int32, len(deg)),
	}
	for i := range deg {
		h.ids[i] = int32(i)
		h.keys[i] = deg[i]
	}
	// heapify
	for i := len(h.ids)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h
}

func (h *maxHeap) len() int { return len(h.ids) }

func (h *maxHeap) less(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] > h.keys[j]
	}
	return h.ids[i] < h.ids[j] // deterministic tie-break
}

func (h *maxHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
}

func (h *maxHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.ids) && h.less(l, best) {
			best = l
		}
		if r < len(h.ids) && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *maxHeap) pop() int32 {
	top := h.ids[0]
	last := len(h.ids) - 1
	h.swap(0, last)
	h.ids = h.ids[:last]
	h.keys = h.keys[:last]
	h.down(0)
	return top
}

// popStale pops the node with the maximum fresh degree, lazily re-keying
// stale entries. Returns -1 when empty.
func (h *maxHeap) popStale(deg []int32) int32 {
	for h.len() > 0 {
		topID := h.ids[0]
		if h.keys[0] == deg[topID] {
			return h.pop()
		}
		// stale: refresh key and sift down
		h.keys[0] = deg[topID]
		h.down(0)
	}
	return -1
}
