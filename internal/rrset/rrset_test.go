package rrset

import (
	"math"
	"testing"

	"uicwelfare/internal/diffusion"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
)

func TestSampleFromDeterministicLine(t *testing.T) {
	// line 0 -> 1 -> 2 with p=1: RR set from root 2 is {2,1,0}
	g := graph.Line(3, 1)
	s := NewSampler(g)
	rng := stats.NewRNG(1)
	set := s.SampleFrom(2, rng, nil)
	if len(set) != 3 {
		t.Fatalf("RR set = %v", set)
	}
	if set[0] != 2 {
		t.Errorf("root must come first: %v", set)
	}
}

func TestSampleFromZeroProb(t *testing.T) {
	g := graph.Line(3, 0)
	s := NewSampler(g)
	rng := stats.NewRNG(1)
	set := s.SampleFrom(2, rng, nil)
	if len(set) != 1 || set[0] != 2 {
		t.Errorf("RR set = %v, want just the root", set)
	}
}

func TestRRIdentityEstimatesSpread(t *testing.T) {
	// n * E[S hits RR] must approximate sigma(S)
	rng := stats.NewRNG(2)
	g := graph.ErdosRenyi(40, 160, rng).WeightedCascade()
	seeds := []graph.NodeID{0, 7}
	exactish := diffusion.Spread(g, seeds, rng, 100000)

	s := NewSampler(g)
	const samples = 200000
	hits := 0
	inSeed := map[graph.NodeID]bool{0: true, 7: true}
	var buf []graph.NodeID
	for i := 0; i < samples; i++ {
		buf = s.Sample(rng, buf[:0])
		for _, v := range buf {
			if inSeed[v] {
				hits++
				break
			}
		}
	}
	est := float64(g.N()) * float64(hits) / samples
	if math.Abs(est-exactish) > 0.15*exactish+0.1 {
		t.Errorf("RR estimate %v vs MC spread %v", est, exactish)
	}
}

func TestNodeCoinBlocksTraversal(t *testing.T) {
	// with node coin 0 on node 1, RR sets from root 2 on a p=1 line
	// never include 1 or 0
	g := graph.Line(3, 1)
	s := NewSampler(g)
	s.NodeCoin = func(v graph.NodeID) float64 {
		if v == 1 {
			return 0
		}
		return 1
	}
	rng := stats.NewRNG(3)
	for i := 0; i < 50; i++ {
		set := s.SampleFrom(2, rng, nil)
		if len(set) != 1 || set[0] != 2 {
			t.Fatalf("node coin ignored: %v", set)
		}
	}
}

func TestNodeCoinOnRoot(t *testing.T) {
	g := graph.Line(2, 1)
	s := NewSampler(g)
	s.NodeCoin = func(graph.NodeID) float64 { return 0 }
	rng := stats.NewRNG(4)
	set := s.SampleFrom(1, rng, nil)
	if len(set) != 0 {
		t.Errorf("root failing its coin must give empty RR set, got %v", set)
	}
}

func TestEdgesVisitedAccumulates(t *testing.T) {
	g := graph.Line(3, 1)
	s := NewSampler(g)
	rng := stats.NewRNG(5)
	s.SampleFrom(2, rng, nil)
	if s.EdgesVisited == 0 {
		t.Error("EdgesVisited not tracked")
	}
}

func TestCollectionAddAndSet(t *testing.T) {
	g := graph.Line(3, 1)
	c := NewCollection(g)
	rng := stats.NewRNG(6)
	c.Grow(10, rng)
	if c.Len() != 10 {
		t.Fatalf("len=%d", c.Len())
	}
	total := int64(0)
	for i := 0; i < c.Len(); i++ {
		set := c.Set(i)
		if len(set) == 0 {
			t.Fatalf("empty RR set on p=1 line")
		}
		total += int64(len(set))
	}
	if total != c.TotalSize() {
		t.Errorf("TotalSize %d != sum %d", c.TotalSize(), total)
	}
}

func TestCollectionInvertedIndex(t *testing.T) {
	g := graph.Line(3, 1)
	c := NewCollection(g)
	rng := stats.NewRNG(7)
	c.Grow(20, rng)
	// rebuild index by scanning sets and compare with coverOf
	count := make(map[graph.NodeID]int)
	for i := 0; i < c.Len(); i++ {
		for _, v := range c.Set(i) {
			count[v]++
		}
	}
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if len(c.coverOf[v]) != count[v] {
			t.Errorf("node %d: index %d vs scan %d", v, len(c.coverOf[v]), count[v])
		}
	}
}

func TestCoverageOf(t *testing.T) {
	g := graph.Line(3, 1)
	c := NewCollection(g)
	rng := stats.NewRNG(8)
	c.Grow(50, rng)
	// node 0 reaches everything on a p=1 line, so it covers every set
	if got := c.CoverageOf([]graph.NodeID{0}); got != c.Len() {
		t.Errorf("coverage of node 0 = %d, want %d", got, c.Len())
	}
	if f := c.FractionCovered([]graph.NodeID{0}); f != 1 {
		t.Errorf("fraction = %v", f)
	}
}

func TestCollectionReset(t *testing.T) {
	g := graph.Line(3, 1)
	c := NewCollection(g)
	rng := stats.NewRNG(9)
	c.Grow(5, rng)
	c.Reset()
	if c.Len() != 0 || c.TotalSize() != 0 {
		t.Errorf("reset failed: len=%d", c.Len())
	}
	if c.CoverageOf([]graph.NodeID{0}) != 0 {
		t.Errorf("stale coverage after reset")
	}
	c.Grow(5, rng)
	if c.Len() != 5 {
		t.Errorf("regrow failed")
	}
}

func TestNodeSelectionPicksSourceOnLine(t *testing.T) {
	g := graph.Line(4, 1)
	c := NewCollection(g)
	rng := stats.NewRNG(10)
	c.Grow(200, rng)
	seeds, covered := c.NodeSelection(1)
	if len(seeds) != 1 || seeds[0] != 0 {
		t.Errorf("selected %v, want {0}", seeds)
	}
	if covered != 1 {
		t.Errorf("node 0 covers all sets on a p=1 line, got %v", covered)
	}
}

func TestNodeSelectionPrefixProperty(t *testing.T) {
	rng := stats.NewRNG(11)
	g := graph.ErdosRenyi(60, 240, rng).WeightedCascade()
	c := NewCollection(g)
	c.Grow(2000, rng)
	s5, _ := c.NodeSelection(5)
	s10, _ := c.NodeSelection(10)
	for i := range s5 {
		if s5[i] != s10[i] {
			t.Fatalf("greedy prefix broken at %d: %v vs %v", i, s5, s10)
		}
	}
}

func TestNodeSelectionCoverageMatchesRecount(t *testing.T) {
	rng := stats.NewRNG(12)
	g := graph.ErdosRenyi(50, 200, rng).WeightedCascade()
	c := NewCollection(g)
	c.Grow(1000, rng)
	seeds, covered := c.NodeSelection(7)
	recount := c.FractionCovered(seeds)
	if math.Abs(covered-recount) > 1e-12 {
		t.Errorf("incremental coverage %v vs recount %v", covered, recount)
	}
}

func TestNodeSelectionGreedyIsExactGreedy(t *testing.T) {
	// compare against a naive argmax greedy implementation
	rng := stats.NewRNG(13)
	g := graph.ErdosRenyi(30, 120, rng).WeightedCascade()
	c := NewCollection(g)
	c.Grow(500, rng)
	seeds, _ := c.NodeSelection(4)

	// naive greedy
	covered := make([]bool, c.Len())
	var naive []graph.NodeID
	for it := 0; it < 4; it++ {
		bestGain, best := -1, graph.NodeID(-1)
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			gain := 0
			for _, id := range c.coverOf[v] {
				if !covered[id] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, best = gain, v
			}
		}
		naive = append(naive, best)
		for _, id := range c.coverOf[best] {
			covered[id] = true
		}
	}
	// coverage of both selections must be equal (seed identity may differ
	// on ties)
	if c.CoverageOf(seeds) != c.CoverageOf(naive) {
		t.Errorf("lazy greedy coverage %d != naive %d (%v vs %v)",
			c.CoverageOf(seeds), c.CoverageOf(naive), seeds, naive)
	}
}

func TestNodeSelectionBudgetOverflow(t *testing.T) {
	g := graph.Line(3, 1)
	c := NewCollection(g)
	rng := stats.NewRNG(14)
	c.Grow(10, rng)
	seeds, covered := c.NodeSelection(10)
	if len(seeds) != 3 {
		t.Errorf("selected %d seeds from 3-node graph", len(seeds))
	}
	if covered != 1 {
		t.Errorf("full selection must cover everything")
	}
}

func TestNodeSelectionEmptyCollection(t *testing.T) {
	g := graph.Line(3, 1)
	c := NewCollection(g)
	seeds, covered := c.NodeSelection(2)
	if covered != 0 {
		t.Errorf("coverage %v on empty collection", covered)
	}
	if len(seeds) > 2 {
		t.Errorf("too many seeds: %v", seeds)
	}
}
