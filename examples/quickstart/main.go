// Quickstart: allocate seeds for two complementary items on a synthetic
// social network and estimate the expected social welfare.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	welfare "uicwelfare"
)

func main() {
	rng := welfare.NewRNG(42)

	// A Flixster-like social network (Table 2 stand-in) with the paper's
	// weighted-cascade influence probabilities p(u,v) = 1/indeg(v).
	g := welfare.GenerateNetwork("flixster", 0.5, 42)
	fmt.Printf("network: %v\n", g)

	// Two complementary items (Table 3, configuration 1): each item is
	// worth its price on its own, but the bundle carries a surplus.
	m := welfare.Config1()

	// Seed budgets: item 0 may be seeded at 40 users, item 1 at 20.
	p, err := welfare.NewProblem(g, m, []int{40, 20})
	if err != nil {
		panic(err)
	}

	// bundleGRD: the (1-1/e-ε)-approximate greedy allocation. It never
	// looks at the utilities — complementarity alone justifies bundling.
	res := welfare.BundleGRD(p, welfare.Options{}, rng)
	fmt.Printf("bundleGRD selected %d seed pairs using %d RR sets\n",
		res.Alloc.Pairs(), res.NumRRSets)

	// The smaller-budget item rides on a prefix of the same seed ranking.
	fmt.Printf("item 0 seeds (first 5 of %d): %v\n", len(res.Alloc.Seeds[0]), res.Alloc.Seeds[0][:5])
	fmt.Printf("item 1 seeds (first 5 of %d): %v\n", len(res.Alloc.Seeds[1]), res.Alloc.Seeds[1][:5])

	// Estimate the expected social welfare by Monte-Carlo simulation of
	// the UIC diffusion.
	est := welfare.EstimateWelfare(p, res.Alloc, rng, 20000)
	fmt.Printf("expected social welfare: %.1f ± %.1f\n", est.Mean, 1.96*est.StdErr)

	// Compare against the item-disjoint baseline.
	base := welfare.ItemDisjoint(p, welfare.Options{}, rng)
	bEst := welfare.EstimateWelfare(p, base.Alloc, rng, 20000)
	fmt.Printf("item-disj baseline:      %.1f ± %.1f\n", bEst.Mean, 1.96*bEst.StdErr)
}
