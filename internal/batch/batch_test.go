package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// unionMerge mimics the PRIMA merge: union of budget values, sorted
// non-increasingly, deduped.
func unionMerge(a, b []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range append(append([]int(nil), a...), b...) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] > out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// maxMerge mimics the IMM merge: a single total budget, maxed.
func maxMerge(a, b []int) []int {
	if len(a) == 0 {
		return append([]int(nil), b...)
	}
	if len(b) == 0 || a[0] >= b[0] {
		return append([]int(nil), a...)
	}
	return append([]int(nil), b...)
}

// TestCoalescesConcurrentSubmits drives N concurrent submits with
// distinct budgets through one group and asserts exactly one build ran,
// sized for the merged vector, with N-1 submits counted as coalesced.
func TestCoalescesConcurrentSubmits(t *testing.T) {
	s := New(50 * time.Millisecond)
	var builds atomic.Int64
	var gotBudgets []int
	build := func(ctx context.Context, budgets []int) (any, bool, error) {
		builds.Add(1)
		gotBudgets = budgets
		return "sketch", false, nil
	}

	const n = 8
	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sk, _, shared, err := s.Submit(context.Background(), "g1", []int{i + 1}, unionMerge, build)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if sk != "sketch" {
				t.Errorf("submit %d: got %v", i, sk)
			}
			if shared {
				sharedCount.Add(1)
			}
		}(i)
	}
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}
	if len(gotBudgets) != n || gotBudgets[0] != n {
		t.Fatalf("merged budgets = %v, want union of 1..%d sorted desc", gotBudgets, n)
	}
	st := s.Stats()
	if st.Batches != 1 {
		t.Fatalf("Batches = %d, want 1", st.Batches)
	}
	if st.Coalesced != n-1 || sharedCount.Load() != n-1 {
		t.Fatalf("Coalesced = %d (shared %d), want %d", st.Coalesced, sharedCount.Load(), n-1)
	}
}

// TestDistinctKeysDoNotCoalesce asserts group isolation: different keys
// build independently.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	s := New(20 * time.Millisecond)
	var builds atomic.Int64
	build := func(ctx context.Context, budgets []int) (any, bool, error) {
		builds.Add(1)
		return len(budgets), false, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, _, err := s.Submit(context.Background(), fmt.Sprintf("k%d", i), []int{5}, maxMerge, build); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 4 {
		t.Fatalf("builds = %d, want 4", got)
	}
	if st := s.Stats(); st.Coalesced != 0 {
		t.Fatalf("Coalesced = %d, want 0", st.Coalesced)
	}
}

// TestCanceledWaiterDoesNotCancelBuild: one of two waiters abandons
// mid-build; the build must complete for the survivor.
func TestCanceledWaiterDoesNotCancelBuild(t *testing.T) {
	s := New(10 * time.Millisecond)
	started := make(chan struct{})
	release := make(chan struct{})
	build := func(ctx context.Context, budgets []int) (any, bool, error) {
		close(started)
		select {
		case <-release:
			return "ok", false, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	errs := make(chan error, 2)
	var got atomic.Value
	go func() {
		_, _, _, err := s.Submit(ctx1, "g", []int{3}, maxMerge, build)
		errs <- err
	}()
	go func() {
		sk, _, _, err := s.Submit(context.Background(), "g", []int{2}, maxMerge, build)
		if sk != nil {
			got.Store(sk)
		}
		errs <- err
	}()

	<-started
	cancel1()
	// The canceled waiter returns promptly with its own ctx error.
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-errs; err != nil {
		t.Fatalf("surviving waiter: %v", err)
	}
	if got.Load() != "ok" {
		t.Fatalf("surviving waiter got %v, want ok", got.Load())
	}
}

// TestAllWaitersCanceledCancelsBuild: once the last waiter detaches, the
// build context must be canceled so the work stops.
func TestAllWaitersCanceledCancelsBuild(t *testing.T) {
	s := New(10 * time.Millisecond)
	started := make(chan struct{})
	buildCanceled := make(chan struct{})
	build := func(ctx context.Context, budgets []int) (any, bool, error) {
		close(started)
		<-ctx.Done()
		close(buildCanceled)
		return nil, false, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, _, err := s.Submit(ctx, "g", []int{3}, maxMerge, build)
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-buildCanceled:
	case <-time.After(2 * time.Second):
		t.Fatal("build context was never canceled after the last waiter left")
	}
}

// TestJoinerAfterAllWaitersDetachedStartsFresh: when every waiter of a
// still-gathering group cancels, a later live request must lead a fresh
// group (with a live build context) instead of inheriting the dead
// group's cancellation.
func TestJoinerAfterAllWaitersDetachedStartsFresh(t *testing.T) {
	s := New(150 * time.Millisecond)
	var builds atomic.Int64
	build := func(ctx context.Context, budgets []int) (any, bool, error) {
		builds.Add(1)
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		return "ok", false, nil
	}
	// Leader opens the window and cancels before it fires.
	ctx, cancel := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, _, err := s.Submit(ctx, "g", []int{3}, maxMerge, build)
		leaderErr <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the leader open the group
	cancel()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader: err = %v, want context.Canceled", err)
	}
	// A later live request must not be poisoned by the dead group.
	sk, _, _, err := s.Submit(context.Background(), "g", []int{5}, maxMerge, build)
	if err != nil {
		t.Fatalf("live request after dead group: %v (inherited the dead group's cancellation?)", err)
	}
	if sk != "ok" {
		t.Fatalf("got %v, want ok", sk)
	}
}

// TestCoveredReportsInFlightDominance pins the admission-control seam:
// Covered is true exactly while a live group's merged vector dominates
// the probe budgets.
func TestCoveredReportsInFlightDominance(t *testing.T) {
	s := New(100 * time.Millisecond)
	release := make(chan struct{})
	started := make(chan struct{})
	build := func(ctx context.Context, budgets []int) (any, bool, error) {
		close(started)
		<-release
		return "ok", false, nil
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, _, _, err := s.Submit(context.Background(), "g", []int{10}, maxMerge, build); err != nil {
			t.Error(err)
		}
	}()
	<-started // gather window closed, build for [10] in flight
	if !s.Covered("g", []int{7}, maxMerge) {
		t.Error("Covered([7]) = false with [10] in flight")
	}
	if s.Covered("g", []int{12}, maxMerge) {
		t.Error("Covered([12]) = true with only [10] in flight")
	}
	if s.Covered("other", []int{7}, maxMerge) {
		t.Error("Covered = true for a key with no group")
	}
	close(release)
	<-done
	if s.Covered("g", []int{7}, maxMerge) {
		t.Error("Covered = true after the group completed")
	}
}

// TestLateDominatedRequestJoinsInFlightBuild: a submit arriving after
// the window closed, whose budgets the frozen merged vector dominates,
// must join the in-flight build instead of starting a second one.
func TestLateDominatedRequestJoinsInFlightBuild(t *testing.T) {
	s := New(5 * time.Millisecond)
	firstRunning := make(chan struct{})
	release := make(chan struct{})
	var builds atomic.Int64
	build := func(ctx context.Context, budgets []int) (any, bool, error) {
		if builds.Add(1) == 1 {
			close(firstRunning)
			<-release
		}
		return "sketch", false, nil
	}
	leader := make(chan error, 1)
	go func() {
		_, _, _, err := s.Submit(context.Background(), "g", []int{10}, maxMerge, build)
		leader <- err
	}()
	<-firstRunning // window closed, build in flight for [10]

	late := make(chan bool, 1)
	go func() {
		_, _, shared, err := s.Submit(context.Background(), "g", []int{4}, maxMerge, build)
		if err != nil {
			t.Error(err)
		}
		late <- shared
	}()
	// Give the late submit a moment to register, then release the build.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-leader; err != nil {
		t.Fatal(err)
	}
	if !<-late {
		t.Fatal("late dominated request did not share the in-flight build")
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}
}

// TestLateUncoveredRequestOpensNewGroup: a submit arriving after the
// window closed whose budgets exceed the frozen vector must run its own
// build.
func TestLateUncoveredRequestOpensNewGroup(t *testing.T) {
	s := New(5 * time.Millisecond)
	firstRunning := make(chan struct{})
	release := make(chan struct{})
	var builds atomic.Int64
	var mu sync.Mutex
	var sizes []int
	build := func(ctx context.Context, budgets []int) (any, bool, error) {
		if builds.Add(1) == 1 {
			close(firstRunning)
			<-release
		}
		mu.Lock()
		sizes = append(sizes, budgets[0])
		mu.Unlock()
		return "sketch", false, nil
	}
	leader := make(chan error, 1)
	go func() {
		_, _, _, err := s.Submit(context.Background(), "g", []int{4}, maxMerge, build)
		leader <- err
	}()
	<-firstRunning

	lateDone := make(chan error, 1)
	go func() {
		_, _, _, err := s.Submit(context.Background(), "g", []int{10}, maxMerge, build)
		lateDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-leader; err != nil {
		t.Fatal(err)
	}
	if err := <-lateDone; err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 2 {
		t.Fatalf("builds = %d, want 2", got)
	}
	mu.Lock()
	defer mu.Unlock()
	want := map[int]bool{4: true, 10: true}
	for _, k := range sizes {
		if !want[k] {
			t.Fatalf("unexpected build size %d (sizes %v)", k, sizes)
		}
	}
}

// TestBuildErrorReachesEveryWaiter: a failing build reports the same
// error to all group members, and the next submit builds afresh.
func TestBuildErrorReachesEveryWaiter(t *testing.T) {
	s := New(20 * time.Millisecond)
	boom := errors.New("boom")
	var builds atomic.Int64
	build := func(ctx context.Context, budgets []int) (any, bool, error) {
		builds.Add(1)
		return nil, false, boom
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, _, err := s.Submit(context.Background(), "g", []int{2}, maxMerge, build); !errors.Is(err, boom) {
				t.Errorf("err = %v, want boom", err)
			}
		}()
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1", builds.Load())
	}
	// Nothing is cached in the scheduler: a fresh submit builds again.
	if _, _, _, err := s.Submit(context.Background(), "g", []int{2}, maxMerge, build); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2", builds.Load())
	}
}
