package stats

import "math"

// Dist is a real-valued probability distribution. The UIC model attaches
// one zero-mean Dist to every item as its noise term.
type Dist interface {
	// Sample draws one variate using the given generator.
	Sample(r *RNG) float64
	// Mean returns the expectation of the distribution.
	Mean() float64
	// Variance returns the variance of the distribution.
	Variance() float64
}

// Gaussian is the normal distribution N(Mu, Sigma^2).
type Gaussian struct {
	Mu    float64
	Sigma float64
}

// Sample draws from the Gaussian.
func (g Gaussian) Sample(r *RNG) float64 { return g.Mu + g.Sigma*r.NormFloat64() }

// Mean returns Mu.
func (g Gaussian) Mean() float64 { return g.Mu }

// Variance returns Sigma^2.
func (g Gaussian) Variance() float64 { return g.Sigma * g.Sigma }

// CDF returns P[X <= x] for the Gaussian.
func (g Gaussian) CDF(x float64) float64 {
	if g.Sigma == 0 {
		if x < g.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-g.Mu)/(g.Sigma*math.Sqrt2))
}

// Noise returns the zero-mean Gaussian N(0, sigma^2) used as the paper's
// default noise distribution.
func Noise(sigma float64) Gaussian { return Gaussian{Mu: 0, Sigma: sigma} }

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// Sample draws from the uniform distribution.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Variance returns (Hi-Lo)^2/12.
func (u Uniform) Variance() float64 { d := u.Hi - u.Lo; return d * d / 12 }

// PointMass is the degenerate distribution concentrated at V. A PointMass
// at zero models items with no valuation uncertainty.
type PointMass struct {
	V float64
}

// Sample returns V.
func (p PointMass) Sample(*RNG) float64 { return p.V }

// Mean returns V.
func (p PointMass) Mean() float64 { return p.V }

// Variance returns 0.
func (p PointMass) Variance() float64 { return 0 }

// TruncatedGaussian is N(Mu, Sigma^2) conditioned on [Lo, Hi], sampled by
// rejection. It is used by tests that need bounded noise (the
// counterexamples in Theorem 1 assume |N(i)| <= |V(i)-P(i)|).
type TruncatedGaussian struct {
	Mu, Sigma float64
	Lo, Hi    float64
}

// Sample draws by rejection; the truncation interval must have positive
// probability under the base Gaussian.
func (t TruncatedGaussian) Sample(r *RNG) float64 {
	for i := 0; ; i++ {
		x := t.Mu + t.Sigma*r.NormFloat64()
		if x >= t.Lo && x <= t.Hi {
			return x
		}
		if i > 10000 {
			// Pathological truncation; clamp rather than loop forever.
			return math.Max(t.Lo, math.Min(t.Hi, x))
		}
	}
}

// Mean returns the mean of the truncated normal.
func (t TruncatedGaussian) Mean() float64 {
	if t.Sigma == 0 {
		return t.Mu
	}
	a := (t.Lo - t.Mu) / t.Sigma
	b := (t.Hi - t.Mu) / t.Sigma
	z := stdNormCDF(b) - stdNormCDF(a)
	if z <= 0 {
		return t.Mu
	}
	return t.Mu + t.Sigma*(stdNormPDF(a)-stdNormPDF(b))/z
}

// Variance returns the variance of the truncated normal.
func (t TruncatedGaussian) Variance() float64 {
	if t.Sigma == 0 {
		return 0
	}
	a := (t.Lo - t.Mu) / t.Sigma
	b := (t.Hi - t.Mu) / t.Sigma
	z := stdNormCDF(b) - stdNormCDF(a)
	if z <= 0 {
		return 0
	}
	pa, pb := stdNormPDF(a), stdNormPDF(b)
	m := (pa - pb) / z
	v := 1 + (a*pa-b*pb)/z - m*m
	return t.Sigma * t.Sigma * v
}

func stdNormPDF(x float64) float64 { return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi) }
func stdNormCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
