package rrset

import (
	"context"
	"testing"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
)

// growTestGraph is a graph big enough that parallel growth spans many
// chunks and every worker gets work.
func growTestGraph() *graph.Graph {
	rng := stats.NewRNG(1001)
	return graph.ErdosRenyi(200, 1200, rng).WeightedCascade()
}

func sameCollections(t *testing.T, a, b *Collection) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("set counts differ: %d vs %d", a.Len(), b.Len())
	}
	am, bm := a.Members(), b.Members()
	if len(am) != len(bm) {
		t.Fatalf("member counts differ: %d vs %d", len(am), len(bm))
	}
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("members diverge at %d: %d vs %d", i, am[i], bm[i])
		}
	}
	ao, bo := a.Offsets(), b.Offsets()
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("offsets diverge at %d: %d vs %d", i, ao[i], bo[i])
		}
	}
}

// TestGrowParallelDeterministicForFixedSeedAndWorkers is the
// reproducibility contract: for a fixed (seed, workers) pair the grown
// collection is byte-identical across runs regardless of goroutine
// scheduling.
func TestGrowParallelDeterministicForFixedSeedAndWorkers(t *testing.T) {
	g := growTestGraph()
	const target, workers = 2000, 4
	var runs [3]*Collection
	for i := range runs {
		c := NewCollection(g)
		if err := c.GrowParallelCtx(context.Background(), target, stats.NewRNG(7), workers, nil); err != nil {
			t.Fatal(err)
		}
		if c.Len() < target {
			t.Fatalf("run %d grew %d sets, want >= %d", i, c.Len(), target)
		}
		runs[i] = c
	}
	sameCollections(t, runs[0], runs[1])
	sameCollections(t, runs[0], runs[2])
}

// TestGrowParallelWorkersOneMatchesSerial: workers <= 1 must be the
// legacy serial path bit-for-bit — same RNG draws, same Members and
// Offsets as GrowCtx on the same seed.
func TestGrowParallelWorkersOneMatchesSerial(t *testing.T) {
	g := growTestGraph()
	const target = 1500
	for _, workers := range []int{0, 1} {
		serial := NewCollection(g)
		if err := serial.GrowCtx(context.Background(), target, stats.NewRNG(11), nil); err != nil {
			t.Fatal(err)
		}
		par := NewCollection(g)
		if err := par.GrowParallelCtx(context.Background(), target, stats.NewRNG(11), workers, nil); err != nil {
			t.Fatal(err)
		}
		sameCollections(t, serial, par)
	}
}

// TestGrowParallelIncrementalReproducible: growing to an intermediate
// target and then extending must reproduce exactly when the same
// (seed sequence, workers) is replayed — the property ExtendSketch's
// determinism rests on.
func TestGrowParallelIncrementalReproducible(t *testing.T) {
	g := growTestGraph()
	const mid, final, workers = 700, 1900, 3
	grow := func() *Collection {
		c := NewCollection(g)
		rng := stats.NewRNG(23)
		if err := c.GrowParallelCtx(context.Background(), mid, rng, workers, nil); err != nil {
			t.Fatal(err)
		}
		if err := c.GrowParallelCtx(context.Background(), final, rng, workers, nil); err != nil {
			t.Fatal(err)
		}
		return c
	}
	sameCollections(t, grow(), grow())
}

// TestGrowParallelAdvancesCallerRNGOnce: a parallel grow must consume
// exactly one draw from the caller's stream, so serial work interleaved
// with parallel grows stays reproducible.
func TestGrowParallelAdvancesCallerRNGOnce(t *testing.T) {
	g := growTestGraph()
	rng := stats.NewRNG(31)
	c := NewCollection(g)
	if err := c.GrowParallelCtx(context.Background(), 600, rng, 4, nil); err != nil {
		t.Fatal(err)
	}
	ref := stats.NewRNG(31)
	ref.Uint64() // the base-seed draw
	if got, want := rng.Uint64(), ref.Uint64(); got != want {
		t.Fatalf("caller stream advanced by more than one draw: next=%d want %d", got, want)
	}
}

// TestGrowParallelCancellationLeavesCollectionUntouched: a context
// canceled before (or during) the grow must leave Members/Offsets
// exactly as they were — no partial merge.
func TestGrowParallelCancellationLeavesCollectionUntouched(t *testing.T) {
	g := growTestGraph()
	c := NewCollection(g)
	if err := c.GrowParallelCtx(context.Background(), 400, stats.NewRNG(5), 2, nil); err != nil {
		t.Fatal(err)
	}
	wantLen, wantMembers := c.Len(), len(c.Members())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.GrowParallelCtx(ctx, 5000, stats.NewRNG(6), 4, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.Len() != wantLen || len(c.Members()) != wantMembers {
		t.Fatalf("canceled grow mutated collection: %d sets / %d members, want %d / %d",
			c.Len(), len(c.Members()), wantLen, wantMembers)
	}
	// The collection must still be growable after a canceled attempt.
	if err := c.GrowParallelCtx(context.Background(), int64(wantLen)+300, stats.NewRNG(7), 4, nil); err != nil {
		t.Fatal(err)
	}
	if c.Len() < wantLen+300 {
		t.Fatalf("post-cancel grow stalled at %d sets", c.Len())
	}
}

// TestGrowParallelProgressMonotone: the report callback must observe a
// non-decreasing done count that finishes exactly at the final length.
func TestGrowParallelProgressMonotone(t *testing.T) {
	g := growTestGraph()
	c := NewCollection(g)
	last := int64(-1)
	calls := 0
	err := c.GrowParallelCtx(context.Background(), 2100, stats.NewRNG(13), 4, func(done, target int64) {
		calls++
		if done < last {
			t.Errorf("progress went backwards: %d after %d", done, last)
		}
		if target != 2100 {
			t.Errorf("target = %d, want 2100", target)
		}
		last = done
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("report never called")
	}
	if last != int64(c.Len()) {
		t.Fatalf("final reported done = %d, want collection length %d", last, c.Len())
	}
}

// TestGrowParallelEdgesVisited: the width statistic must accumulate
// across parallel workers and keep accumulating on subsequent serial
// growth.
func TestGrowParallelEdgesVisited(t *testing.T) {
	g := growTestGraph()
	c := NewCollection(g)
	if err := c.GrowParallelCtx(context.Background(), 800, stats.NewRNG(17), 4, nil); err != nil {
		t.Fatal(err)
	}
	afterPar := c.EdgesVisited()
	if afterPar == 0 {
		t.Fatal("EdgesVisited not tracked through parallel workers")
	}
	if err := c.GrowCtx(context.Background(), 1100, stats.NewRNG(18), nil); err != nil {
		t.Fatal(err)
	}
	if c.EdgesVisited() <= afterPar {
		t.Fatalf("EdgesVisited did not keep accumulating: %d then %d", afterPar, c.EdgesVisited())
	}
}

// TestCloneIsolation: growing a clone must not perturb the original's
// storage, inverted index, or greedy selection — the contract that lets
// ExtendSketch run while the resident sketch serves readers.
func TestCloneIsolation(t *testing.T) {
	g := growTestGraph()
	orig := NewCollection(g)
	if err := orig.GrowParallelCtx(context.Background(), 900, stats.NewRNG(19), 2, nil); err != nil {
		t.Fatal(err)
	}
	wantLen := orig.Len()
	wantMembers := append([]graph.NodeID(nil), orig.Members()...)
	wantSeeds, wantCov := orig.NodeSelection(10)
	wantSeedsCopy := append([]graph.NodeID(nil), wantSeeds...)

	cl := orig.Clone()
	sameCollections(t, orig, cl)
	if err := cl.GrowParallelCtx(context.Background(), 2500, stats.NewRNG(20), 4, nil); err != nil {
		t.Fatal(err)
	}
	if cl.Len() < 2500 {
		t.Fatalf("clone grew to %d, want >= 2500", cl.Len())
	}

	if orig.Len() != wantLen {
		t.Fatalf("original length changed: %d, want %d", orig.Len(), wantLen)
	}
	for i, v := range orig.Members() {
		if v != wantMembers[i] {
			t.Fatalf("original members changed at %d", i)
		}
	}
	gotSeeds, gotCov := orig.NodeSelection(10)
	if gotCov != wantCov {
		t.Fatalf("original coverage changed: %g, want %g", gotCov, wantCov)
	}
	for i := range gotSeeds {
		if gotSeeds[i] != wantSeedsCopy[i] {
			t.Fatalf("original selection changed at %d: %d vs %d", i, gotSeeds[i], wantSeedsCopy[i])
		}
	}
	// The clone's width statistic must have carried over and grown.
	if cl.EdgesVisited() <= orig.EdgesVisited() {
		t.Fatalf("clone EdgesVisited %d did not grow past original %d", cl.EdgesVisited(), orig.EdgesVisited())
	}
}

// TestGrowParallelSelectionQuality: a parallel-built collection is
// statistically interchangeable with a serial one — greedy coverage at
// the same budget must agree within a loose tolerance.
func TestGrowParallelSelectionQuality(t *testing.T) {
	g := growTestGraph()
	serial := NewCollection(g)
	if err := serial.GrowCtx(context.Background(), 3000, stats.NewRNG(29), nil); err != nil {
		t.Fatal(err)
	}
	par := NewCollection(g)
	if err := par.GrowParallelCtx(context.Background(), 3000, stats.NewRNG(37), 4, nil); err != nil {
		t.Fatal(err)
	}
	_, covS := serial.NodeSelection(8)
	_, covP := par.NodeSelection(8)
	if diff := covS - covP; diff > 0.1 || diff < -0.1 {
		t.Fatalf("coverage diverges: serial %g vs parallel %g", covS, covP)
	}
}
