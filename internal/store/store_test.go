package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/imm"
	"uicwelfare/internal/prima"
	"uicwelfare/internal/stats"
)

// testGraph builds a small but non-trivial graph with heterogeneous
// probabilities.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.BarabasiAlbert(200, 3, stats.NewRNG(7))
	return g.WeightedCascade()
}

func graphsEqual(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("size mismatch: %v vs %v", a, b)
	}
	ai, at, ap := a.CSR()
	bi, bt, bp := b.CSR()
	if !reflect.DeepEqual(ai, bi) || !reflect.DeepEqual(at, bt) || !reflect.DeepEqual(ap, bp) {
		t.Fatal("out-CSR arrays differ after round-trip")
	}
	// The rebuilt in-adjacency must agree too.
	for v := graph.NodeID(0); int(v) < a.N(); v++ {
		as, aps := a.InEdges(v)
		bs, bps := b.InEdges(v)
		if !reflect.DeepEqual(as, bs) || !reflect.DeepEqual(aps, bps) {
			t.Fatalf("in-edges of %d differ", v)
		}
		if !reflect.DeepEqual(a.InEdgePositions(v), b.InEdgePositions(v)) {
			t.Fatalf("in-edge positions of %d differ", v)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := EncodeGraph(&buf, "ba-200", g); err != nil {
		t.Fatal(err)
	}
	name, got, err := DecodeGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "ba-200" {
		t.Errorf("name = %q", name)
	}
	graphsEqual(t, g, got)
	if GraphID(g) != GraphID(got) {
		t.Error("content id changed across round-trip")
	}
}

func TestGraphIDContentAddressing(t *testing.T) {
	g := testGraph(t)
	id := GraphID(g)
	if len(id) != 17 || id[0] != 'g' {
		t.Fatalf("id = %q, want g + 16 hex chars", id)
	}
	// Same content, independent build: same id.
	if id2 := GraphID(graph.BarabasiAlbert(200, 3, stats.NewRNG(7)).WeightedCascade()); id2 != id {
		t.Errorf("identical content hashed differently: %q vs %q", id2, id)
	}
	// Different topology: different id.
	if id3 := GraphID(graph.BarabasiAlbert(200, 3, stats.NewRNG(8)).WeightedCascade()); id3 == id {
		t.Error("different topology collided")
	}
	// Same topology, different probabilities: different id.
	if id4 := GraphID(graph.BarabasiAlbert(200, 3, stats.NewRNG(7)).UniformProb(0.1)); id4 == id {
		t.Error("different probabilities collided")
	}
}

func TestSketchRoundTripPrima(t *testing.T) {
	g := testGraph(t)
	sk := prima.BuildSketch(g, []int{10, 5}, prima.Options{}, stats.NewRNG(1))
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, sk); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSketch(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := decoded.(*prima.Sketch)
	if !ok {
		t.Fatalf("decoded %T", decoded)
	}
	want, have := sk.Select(), got.Select()
	if !reflect.DeepEqual(want, have) {
		t.Errorf("restored sketch selects differently:\nwant %+v\nhave %+v", want, have)
	}
}

func TestSketchRoundTripIMM(t *testing.T) {
	g := testGraph(t)
	sk := imm.BuildSketch(g, 8, imm.Options{}, stats.NewRNG(1))
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, sk); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSketch(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := decoded.(*imm.Sketch)
	if !ok {
		t.Fatalf("decoded %T", decoded)
	}
	want, have := sk.Select(), got.Select()
	if !reflect.DeepEqual(want, have) {
		t.Errorf("restored sketch selects differently:\nwant %+v\nhave %+v", want, have)
	}
}

func TestSketchRoundTripDegenerate(t *testing.T) {
	// k >= n: the sketch has no collection, only the all-nodes marker.
	g := graph.FromEdges(4, [][3]float64{{0, 1, 0.5}, {1, 2, 0.5}})
	sk := imm.BuildSketch(g, 10, imm.Options{}, stats.NewRNG(1))
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, sk); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSketch(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	want, have := sk.Select(), decoded.(*imm.Sketch).Select()
	if !reflect.DeepEqual(want, have) {
		t.Errorf("degenerate sketch: want %+v, have %+v", want, have)
	}
}

func TestEncodeSketchRejectsUnknownType(t *testing.T) {
	if err := EncodeSketch(&bytes.Buffer{}, 42); err == nil {
		t.Fatal("encoded an int as a sketch")
	}
}

// corrupt returns a fresh copy of b with one transformation applied.
func encodeGraphBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeGraph(&buf, "x", g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeGraphCorruptInputs(t *testing.T) {
	g := testGraph(t)
	good := encodeGraphBytes(t, g)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }, ErrTruncated},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"truncated checksum", func(b []byte) []byte { return b[:len(b)-2] }, ErrTruncated},
		{"flipped payload bit", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[25] ^= 0x40
			return c
		}, ErrChecksum},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}, ErrBadMagic},
		{"future version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint32(c[8:12], Version+1)
			return c
		}, ErrBadVersion},
		{"empty file", func(b []byte) []byte { return nil }, ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeGraph(bytes.NewReader(tc.mutate(good)))
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}

	// A sketch frame fed to the graph decoder is a magic mismatch.
	sk := imm.BuildSketch(g, 4, imm.Options{}, stats.NewRNG(1))
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, sk); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeGraph(&buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("sketch frame as graph: err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeSketchCorruptInputs(t *testing.T) {
	g := testGraph(t)
	sk := prima.BuildSketch(g, []int{6}, prima.Options{}, stats.NewRNG(1))
	var buf bytes.Buffer
	if err := EncodeSketch(&buf, sk); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := DecodeSketch(bytes.NewReader(good[:30]), g); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-6] ^= 0x01
	if _, err := DecodeSketch(bytes.NewReader(flipped), g); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped bit: %v", err)
	}
	// A sketch decoded against the wrong (smaller) graph must fail its
	// member validation rather than produce an index out of range later.
	small := graph.FromEdges(2, [][3]float64{{0, 1, 0.5}})
	if _, err := DecodeSketch(bytes.NewReader(good), small); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong graph: %v", err)
	}
}

func TestStoreGraphLifecycle(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	id := GraphID(g)
	if err := s.SaveGraph(id, "net", g); err != nil {
		t.Fatal(err)
	}
	// Idempotent: a second save of the same id is a no-op, not an error.
	if err := s.SaveGraph(id, "net", g); err != nil {
		t.Fatal(err)
	}
	got := s.LoadGraphs()
	if len(got) != 1 || got[0].ID != id || got[0].Name != "net" {
		t.Fatalf("loaded %+v", got)
	}
	graphsEqual(t, g, got[0].Graph)

	// Spill a sketch for the graph, then delete the graph: both artifacts
	// must go.
	sk := imm.BuildSketch(g, 4, imm.Options{}, stats.NewRNG(1))
	if err := s.SaveSketch(id, "key1", sk); err != nil {
		t.Fatal(err)
	}
	if !s.HasSketch(id, "key1") {
		t.Fatal("spilled sketch not found")
	}
	s.DeleteGraph(id)
	if len(s.LoadGraphs()) != 0 {
		t.Error("graph survived deletion")
	}
	if s.HasSketch(id, "key1") {
		t.Error("sketch survived its graph's deletion")
	}
}

// TestDecodeSketchForgedSizeOverflow crafts a .wms with a valid CRC
// whose set size is near 2^64: the decoder must answer ErrCorrupt, not
// wrap the offset accumulator negative and panic in make().
func TestDecodeSketchForgedSizeOverflow(t *testing.T) {
	g := graph.FromEdges(3, [][3]float64{{0, 1, 0.5}})
	var p payloadWriter
	p.uvarint(familyIMM)  // family
	p.uvarint(1)          // k
	p.uvarint(0)          // phase1
	p.float64(1)          // lb
	p.uvarint(0)          // allNodesN
	p.uvarint(1)          // collection present
	p.uvarint(1)          // one set
	p.uvarint(1<<63 + 42) // forged huge size
	var buf bytes.Buffer
	if err := writeFrame(&buf, SketchMagic, p.buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSketch(&buf, g); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged size: err = %v, want ErrCorrupt", err)
	}
}

// TestLoadGraphsReAddressesMismatchedNames drops a graph under a
// non-canonical filename: boot must rename it to its content id so
// DeleteGraph can find it later (otherwise the graph would resurrect on
// every restart after an API delete).
func TestLoadGraphsReAddressesMismatchedNames(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	id := GraphID(g)
	alias := filepath.Join(dir, "graphs", "hand-dropped"+GraphExt)
	if err := SaveGraphFile(alias, "net", g); err != nil {
		t.Fatal(err)
	}
	got := s.LoadGraphs()
	if len(got) != 1 || got[0].ID != id {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := os.Stat(alias); !os.IsNotExist(err) {
		t.Error("alias file survived re-addressing")
	}
	s.DeleteGraph(id)
	if len(s.LoadGraphs()) != 0 {
		t.Error("graph under a stale filename survived deletion")
	}
}

func TestStoreCorruptArtifactsAreSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	id := GraphID(g)
	if err := s.SaveGraph(id, "net", g); err != nil {
		t.Fatal(err)
	}
	// A truncated second artifact must not prevent loading the first.
	bad := filepath.Join(dir, "graphs", "gdeadbeef"+GraphExt)
	if err := os.WriteFile(bad, []byte("WMGRAPH\x00junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := s.LoadGraphs()
	if len(got) != 1 || got[0].ID != id {
		t.Fatalf("loaded %+v", got)
	}
	if s.Stats().LoadErrors != 1 {
		t.Errorf("load errors = %d, want 1", s.Stats().LoadErrors)
	}

	// Same for sketches: a corrupt spill reads as a miss, counts a load
	// error, and is removed so the next rebuild replaces it.
	sk := imm.BuildSketch(g, 4, imm.Options{}, stats.NewRNG(1))
	if err := s.SaveSketch(id, "key1", sk); err != nil {
		t.Fatal(err)
	}
	path := s.sketchPath(id, "key1")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-5] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := s.LoadSketch(id, "key1", g, 0); got != nil {
		t.Fatal("corrupt sketch decoded")
	}
	if s.Stats().LoadErrors != 2 {
		t.Errorf("load errors = %d, want 2", s.Stats().LoadErrors)
	}
	if s.HasSketch(id, "key1") {
		t.Error("corrupt sketch file was not removed")
	}
}

func TestStoreSketchTier(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	id := GraphID(g)
	if s.LoadSketch(id, "key1", g, 0) != nil {
		t.Fatal("hit on empty store")
	}
	sk := prima.BuildSketch(g, []int{5, 3}, prima.Options{}, stats.NewRNG(1))
	if err := s.SaveSketch(id, "key1", sk); err != nil {
		t.Fatal(err)
	}
	got := s.LoadSketch(id, "key1", g, 0)
	if got == nil {
		t.Fatal("miss after spill")
	}
	if !reflect.DeepEqual(sk.Select(), got.(*prima.Sketch).Select()) {
		t.Error("disk round-trip changed the selection")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Spills != 1 || st.LoadErrors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreSketchBudgetEviction(t *testing.T) {
	// A 1 MB budget with ~2 MB of spills must evict the oldest files.
	s, err := Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	id := GraphID(g)
	sk := prima.BuildSketch(g, []int{20, 10}, prima.Options{Eps: 0.3}, stats.NewRNG(1))
	var one bytes.Buffer
	if err := EncodeSketch(&one, sk); err != nil {
		t.Fatal(err)
	}
	// Spill enough copies under distinct keys to exceed the budget.
	copies := int(2<<20/one.Len()) + 2
	for i := 0; i < copies; i++ {
		if err := s.SaveSketch(id, fmt.Sprintf("key%04d", i), sk); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Evictions == 0 {
		t.Error("no evictions despite exceeding the disk budget")
	}
	var total int64
	entries, err := os.ReadDir(filepath.Join(s.Dir(), "sketches"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	if total > 1<<20 {
		t.Errorf("sketch dir holds %d bytes, budget is %d", total, 1<<20)
	}
}

func TestSketchCost(t *testing.T) {
	g := testGraph(t)
	sk := prima.BuildSketch(g, []int{5}, prima.Options{}, stats.NewRNG(1))
	if c := SketchCost(sk); c <= 256 {
		t.Errorf("prima sketch cost = %d, want > floor", c)
	}
	if c := SketchCost("not a sketch"); c != 256 {
		t.Errorf("unknown type cost = %d, want floor", c)
	}
}

func TestLoadGraphFileSniffsFormats(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)

	bin := filepath.Join(dir, "g.wmg")
	if err := SaveGraphFile(bin, "net", g); err != nil {
		t.Fatal(err)
	}
	got, isBinary, err := LoadGraphFile(bin, false)
	if err != nil {
		t.Fatal(err)
	}
	if !isBinary {
		t.Error("binary file not detected")
	}
	graphsEqual(t, g, got)

	text := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(text, []byte("# comment\n0 1 0.5\n1 2 0.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, isBinary, err = LoadGraphFile(text, false)
	if err != nil {
		t.Fatal(err)
	}
	if isBinary {
		t.Error("text file detected as binary")
	}
	if got.N() != 3 || got.M() != 2 {
		t.Errorf("text graph = %v", got)
	}

	if _, _, err := LoadGraphFile(filepath.Join(dir, "missing"), false); err == nil {
		t.Error("missing file: want error")
	}
}

// TestReadFrameForgedLengthDoesNotPreallocate feeds readFrame a tiny
// body whose header declares a near-maxPayload length — the shape of a
// remote-OOM attempt against the HTTP import endpoints. The read must
// fail as truncated after consuming the real bytes, without committing
// the declared (multi-GiB) allocation up front.
func TestReadFrameForgedLengthDoesNotPreallocate(t *testing.T) {
	var frame bytes.Buffer
	frame.WriteString(GraphMagic)
	var word [8]byte
	binary.LittleEndian.PutUint32(word[:4], Version)
	frame.Write(word[:4])
	binary.LittleEndian.PutUint64(word[:], uint64(3<<30)) // forged: 3 GiB declared
	frame.Write(word[:])
	frame.WriteString("short body")

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := readFrame(bytes.NewReader(frame.Bytes()), GraphMagic)
	runtime.ReadMemStats(&after)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
		t.Errorf("readFrame allocated %d bytes for a 10-byte body declaring 3 GiB", grew)
	}

	// A declared length over the format bound is still rejected outright.
	frame.Reset()
	frame.WriteString(GraphMagic)
	binary.LittleEndian.PutUint32(word[:4], Version)
	frame.Write(word[:4])
	binary.LittleEndian.PutUint64(word[:], uint64(5<<30))
	frame.Write(word[:])
	if _, err := readFrame(bytes.NewReader(frame.Bytes()), GraphMagic); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized declared payload: err = %v, want ErrCorrupt", err)
	}
}
