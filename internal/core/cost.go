package core

import (
	"math"

	"uicwelfare/internal/imm"
	"uicwelfare/internal/prima"
)

// costFloor mirrors store.SketchCost's floor: even a degenerate sketch
// (empty instance, or budgets covering the whole graph) holds a little
// bookkeeping.
const costFloor = 256

// rrBytes converts a predicted RR-set count into predicted resident
// bytes with store.SketchCost's accounting: 8 bytes per RR membership
// plus 8 per RR set, with the average RR-set width approximated by
// 1 + m/n — under the weighted-cascade convention each node's incoming
// probabilities sum to 1, so a reverse-reachable walk adds about one
// node per step and the density ratio is the cheap upper-ish proxy for
// its depth.
func rrBytes(nodes, edges int, theta float64) int64 {
	if theta <= 0 {
		return costFloor
	}
	width := 1.0
	if nodes > 0 {
		width += float64(edges) / float64(nodes)
	}
	bytes := theta * (8*width + 8)
	if bytes >= math.MaxInt64-costFloor {
		return math.MaxInt64
	}
	return costFloor + int64(bytes)
}

// primaCostEstimate prices a PRIMA sketch build: the worst-case phase-2
// RR-set count max_k λ*(n, k, ε, ℓ')/k over the canonical budgets
// (OPT_k ≥ k is the only lower bound available without sampling),
// converted to bytes. Deliberately pessimistic — real adaptive runs
// find a much larger lower bound — which is why admission control runs
// the result through store.CostModel's observed-ratio calibration.
func primaCostEstimate(nodes, edges int, eps, ell float64, budgets []int) int64 {
	bs := prima.CanonicalBudgets(budgets, nodes)
	if nodes == 0 || len(bs) == 0 || bs[0] >= nodes {
		// bs[0] >= nodes mirrors prima.BuildSketchCtx exactly: when the
		// top budget covers the whole graph the builder short-circuits to
		// the degenerate all-nodes sketch and samples NOTHING — including
		// for the smaller budgets — so the floor is the true cost, not an
		// admission bypass.
		return costFloor
	}
	logn := math.Log(float64(nodes))
	ellPrime := ell + math.Ln2/logn + math.Log(float64(len(bs)))/logn
	theta := 0.0
	for _, k := range bs {
		if t := imm.LambdaStar(nodes, k, eps, ellPrime) / float64(k); t > theta {
			theta = t
		}
	}
	return rrBytes(nodes, edges, theta)
}

// immCostEstimate prices an IMM sketch build for k = Σ budgets with the
// same worst-case λ*/k bound (and calibration caveat) as
// primaCostEstimate. bundle-disj reuses it: its adaptive sequence of
// IMM selections holds one collection resident at a time, so the
// largest single build is the right admission price.
func immCostEstimate(nodes, edges int, eps, ell float64, budgets []int) int64 {
	k := 0
	for _, b := range budgets {
		k += b
	}
	if k <= 0 || nodes == 0 {
		return costFloor
	}
	if k >= nodes {
		// Mirrors imm.BuildSketchCtx: every node is a seed, no sampling.
		return costFloor
	}
	theta := imm.LambdaStar(nodes, k, eps, imm.EllPlusLog2(ell, nodes)) / float64(k)
	return rrBytes(nodes, edges, theta)
}
